//! Trace-store throughput at the one-million-event scale: the v4
//! stream-vbyte `.mps` container against the text `.prv` parse path,
//! the legacy v1 row codec and the v3 LEB128 columnar codec, on a
//! selective window query over a synthetic PEBS-heavy trace
//! ([`mempersp_bench::gentrace`]).
//!
//! Scan scenarios:
//!
//! * `prv_parse_filter` — parse the whole text trace, then filter
//!   linearly (the pre-store baseline every analysis paid);
//! * `mps_v1_cold_scan` — fresh reader over the *v1 row-format* file:
//!   the original row codec, kept as the far comparator;
//! * `mps_v3_cold_scan` — fresh reader over the v3 LEB128 columnar
//!   file: the codec this PR replaces. `v4_vs_v3_speedup` against
//!   `mps_cold_scan` is asserted >= 1.5 on capable hosts;
//! * `mps_cold_scan` — fresh reader over the v4 stream-vbyte file:
//!   footer pruning, mmap zero-copy chunk access, SIMD control-byte
//!   decode and selection-vector late materialization;
//! * `mps_cached_scan` — the same reader re-queried (block cache /
//!   mapped bytes, no repeated open);
//! * `mps_parallel_scan` — cold scan with surviving chunks spread over
//!   4 worker threads; on a host with >= 4 CPUs this must not be
//!   slower than the sequential cold scan (the candidate set is
//!   asserted to exceed `PARALLEL_MIN_CHUNKS`, so the fan-out path —
//!   not the small-trace fallback — is what's measured);
//! * `mps_cold_scan_noverify` — the same cold scan with per-chunk
//!   CRC32C verification disabled (`set_verify(false)`, the `query
//!   --no-verify` escape hatch). The gap between this and
//!   `mps_cold_scan` is the price of the durability checksums,
//!   asserted < 30% on capable hosts (the v4 scan is fast enough that
//!   a one-pass CRC over the candidate bytes is a visible fraction of
//!   it; the absolute cost is unchanged from v3).
//!
//! The filtered cold scan must also decode strictly fewer payload
//! bytes than a full materialization of the same store — the
//! late-materialization invariant, checked via
//! `ScanStats::payload_bytes_decoded` — and the warm reader must
//! allocate exactly one pooled `DecodeScratch` across all its
//! sequential queries (`scratch_allocs`).
//!
//! Ingest scenarios: the same generated stream written with the
//! inline compressor (`ingest_serial`) and with a 4-thread compressor
//! pool (`ingest_parallel`); output files are byte-identical.
//!
//! Writes `BENCH_store.json` with a `host` block; cross-thread ratios
//! are `null` (with a `*_skipped_reason`) when the host has fewer CPUs
//! than worker threads.

use mempersp_bench::gentrace::{generate, GenConfig};
use mempersp_bench::{cross_thread_speedup, host_cpus, host_info};
use mempersp_extrae::query::{EventClass, Query};
use mempersp_extrae::trace_format::{load_trace, save_trace};
use mempersp_store::{
    write_store_v1, write_store_v3, write_store_with, StoreReader, DEFAULT_CHUNK_BYTES,
    PARALLEL_MIN_CHUNKS,
};
use std::hint::black_box;
use std::time::Instant;

struct Measure {
    name: &'static str,
    /// Events the scenario's answer contained (writes: events stored).
    matched: u64,
    seconds: f64,
}

impl Measure {
    fn per_sec(&self) -> f64 {
        self.matched as f64 / self.seconds
    }
}

/// Run a scenario `n` times and keep the fastest trial.
fn best_of(n: usize, mut f: impl FnMut() -> Measure) -> Measure {
    let mut best = f();
    for _ in 1..n {
        let m = f();
        if m.seconds < best.seconds {
            best = m;
        }
    }
    best
}

fn main() {
    // One million generated events (MEMPERSP_BENCH_EVENTS overrides),
    // written in all three containers.
    let events: u64 = std::env::var("MEMPERSP_BENCH_EVENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let cfg = GenConfig { events, ..GenConfig::default() };
    let trace = generate(&cfg);
    let dir = std::env::temp_dir().join(format!("mempersp_bench_store_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let prv = dir.join("bench.prv");
    let mps = dir.join("bench.mps");
    let mps_v1 = dir.join("bench_v1.mps");
    let mps_v3 = dir.join("bench_v3.mps");
    save_trace(&prv, &trace).expect("write prv");
    let summary = write_store_with(&mps, &trace, DEFAULT_CHUNK_BYTES, 1).expect("write mps");
    write_store_v1(&mps_v1, &trace, DEFAULT_CHUNK_BYTES).expect("write v1 mps");
    write_store_v3(&mps_v3, &trace, DEFAULT_CHUNK_BYTES).expect("write v3 mps");
    let span = trace.events.last().map(|e| e.cycles).unwrap_or(0);

    // A selective query: PEBS samples in the middle quarter of the run
    // — the shape of a "zoom into one phase" analysis.
    let q = Query::all().in_time(span / 2, span / 2 + span / 4).with_kinds(&[EventClass::Pebs]);

    const TRIALS: usize = 5;
    let prv_parse = best_of(2, || {
        let t = Instant::now();
        let parsed = load_trace(&prv).expect("parse");
        let matched = parsed.events.iter().filter(|e| q.matches(e)).count() as u64;
        black_box(&parsed);
        Measure { name: "prv_parse_filter", matched, seconds: t.elapsed().as_secs_f64() }
    });

    let v1_cold = best_of(TRIALS, || {
        let reader = StoreReader::open(&mps_v1).expect("open v1");
        let t = Instant::now();
        let (events, _) = reader.query(&q).expect("query v1");
        let m = Measure {
            name: "mps_v1_cold_scan",
            matched: events.len() as u64,
            seconds: t.elapsed().as_secs_f64(),
        };
        black_box(events);
        m
    });

    let v3_cold = best_of(TRIALS, || {
        let reader = StoreReader::open(&mps_v3).expect("open v3");
        let t = Instant::now();
        let (events, _) = reader.query(&q).expect("query v3");
        let m = Measure {
            name: "mps_v3_cold_scan",
            matched: events.len() as u64,
            seconds: t.elapsed().as_secs_f64(),
        };
        black_box(events);
        m
    });

    let mut cold_stats = None;
    let cold = best_of(TRIALS, || {
        let reader = StoreReader::open(&mps).expect("open");
        let t = Instant::now();
        let (events, stats) = reader.query(&q).expect("query");
        let m = Measure {
            name: "mps_cold_scan",
            matched: events.len() as u64,
            seconds: t.elapsed().as_secs_f64(),
        };
        black_box(events);
        cold_stats = Some(stats);
        m
    });

    let warm_reader = StoreReader::open(&mps).expect("open");
    let (first, _) = warm_reader.query(&q).expect("warm-up query");
    black_box(first);
    let cached = best_of(TRIALS, || {
        let t = Instant::now();
        let (events, stats) = warm_reader.query(&q).expect("query");
        assert_eq!(stats.chunks_decoded, 0, "cached scan must not pay decompression");
        let m = Measure {
            name: "mps_cached_scan",
            matched: events.len() as u64,
            seconds: t.elapsed().as_secs_f64(),
        };
        black_box(events);
        m
    });

    let parallel = best_of(TRIALS, || {
        let reader = StoreReader::open(&mps).expect("open");
        let t = Instant::now();
        let (events, _) = reader.query_parallel(&q, 4).expect("query");
        let m = Measure {
            name: "mps_parallel_scan",
            matched: events.len() as u64,
            seconds: t.elapsed().as_secs_f64(),
        };
        black_box(events);
        m
    });

    let no_verify = best_of(TRIALS, || {
        let mut reader = StoreReader::open(&mps).expect("open");
        reader.set_verify(false);
        let t = Instant::now();
        let (events, _) = reader.query(&q).expect("query");
        let m = Measure {
            name: "mps_cold_scan_noverify",
            matched: events.len() as u64,
            seconds: t.elapsed().as_secs_f64(),
        };
        black_box(events);
        m
    });

    assert_eq!(prv_parse.matched, cold.matched, "containers must agree");
    assert_eq!(v1_cold.matched, cold.matched, "codecs must agree");
    assert_eq!(v3_cold.matched, cold.matched, "v3 and v4 codecs must agree");
    assert_eq!(cold.matched, cached.matched);
    assert_eq!(cold.matched, parallel.matched);
    assert_eq!(cold.matched, no_verify.matched, "verification must not change the answer");

    // Late-materialization invariant: the filtered scan must decode
    // strictly fewer payload bytes than materializing every event in
    // the same store.
    let (all_events, full_stats) = warm_reader.query(&Query::all()).expect("full query");
    assert_eq!(all_events.len() as u64, summary.events);
    black_box(all_events);
    let payload_filtered = cold_stats.as_ref().expect("cold scan ran").payload_bytes_decoded;
    let payload_full = full_stats.payload_bytes_decoded;
    assert!(
        payload_filtered < payload_full,
        "filtered scan decoded {payload_filtered} payload bytes, full materialization \
         {payload_full}; late materialization must read strictly less"
    );

    // Scratch-pool invariant: every sequential query on the warm
    // reader reuses the same pooled DecodeScratch, so the reader
    // allocates exactly one across the whole run.
    let scratch_allocs = warm_reader.scratch_allocs_total();
    assert_eq!(
        scratch_allocs, 1,
        "warm reader allocated {scratch_allocs} DecodeScratch buffers across its \
         sequential queries; the pool must reuse one"
    );

    let stats = cold_stats.expect("cold scan ran");
    let candidates = stats.chunks_decoded + stats.chunks_cached;
    assert!(
        candidates as usize >= PARALLEL_MIN_CHUNKS,
        "query must survive footer pruning with >= {PARALLEL_MIN_CHUNKS} candidate chunks \
         (got {candidates}) so mps_parallel_scan measures the fan-out path, not the fallback"
    );
    // The chunk-fanout regression gate: with enough real CPUs and a
    // candidate set past the fallback threshold, the parallel scan
    // must not lose to the sequential one (5% timer-jitter allowance;
    // both sides are best-of-5).
    if host_cpus() >= 4 {
        assert!(
            parallel.seconds <= cold.seconds * 1.05,
            "parallel scan ({:.4}s) slower than sequential cold scan ({:.4}s) \
             on a {}-cpu host",
            parallel.seconds,
            cold.seconds,
            host_cpus()
        );
    }

    let ingest_serial = best_of(3, || {
        let path = dir.join("ingest_serial.mps");
        let t = Instant::now();
        let s = write_store_with(&path, &trace, DEFAULT_CHUNK_BYTES, 1).expect("write");
        Measure { name: "ingest_serial", matched: s.events, seconds: t.elapsed().as_secs_f64() }
    });
    let ingest_parallel = best_of(3, || {
        let path = dir.join("ingest_parallel.mps");
        let t = Instant::now();
        let s = write_store_with(&path, &trace, DEFAULT_CHUNK_BYTES, 4).expect("write");
        Measure { name: "ingest_parallel", matched: s.events, seconds: t.elapsed().as_secs_f64() }
    });
    let serial_bytes = std::fs::read(dir.join("ingest_serial.mps")).expect("read serial");
    let parallel_bytes = std::fs::read(dir.join("ingest_parallel.mps")).expect("read parallel");
    assert_eq!(serial_bytes, parallel_bytes, "compressor pool must not change the bytes");

    // The durability-tax gate. The v4 selection-vector scan decodes a
    // candidate chunk faster than the CRC pass reads it, so the
    // checksum is a visible fraction of the cold scan now — the
    // budget is 30% of scan time (its absolute cost is the same
    // one-pass CRC32C v3 paid). Host-gated like the thread-count
    // asserts — a 1-cpu container's timer jitter swamps a few percent.
    let crc_overhead = cold.seconds / no_verify.seconds - 1.0;
    if host_cpus() >= 4 {
        assert!(
            crc_overhead < 0.30,
            "CRC32C verification costs {:.1}% on a cold scan ({:.4}s vs {:.4}s no-verify); \
             the durability budget is 30%",
            crc_overhead * 100.0,
            cold.seconds,
            no_verify.seconds
        );
    }

    let measures = [
        &prv_parse,
        &v1_cold,
        &v3_cold,
        &cold,
        &no_verify,
        &cached,
        &parallel,
        &ingest_serial,
        &ingest_parallel,
    ];
    let mut scenarios = Vec::new();
    for m in measures {
        println!(
            "{:<18} {:>9} events {:>9.5}s {:>10.2} K events/s",
            m.name,
            m.matched,
            m.seconds,
            m.per_sec() / 1e3
        );
        scenarios.push(serde_json::json!({
            "name": m.name,
            "events": m.matched,
            "seconds": m.seconds,
            "events_per_sec": m.per_sec(),
        }));
    }
    let cold_vs_prv = prv_parse.seconds / cold.seconds;
    let v2_vs_v1 = v1_cold.seconds / cold.seconds;
    let v4_vs_v3 = v3_cold.seconds / cold.seconds;
    let cached_vs_cold = cold.seconds / cached.seconds;

    // The headline gate of the stream-vbyte PR: the v4 cold scan must
    // beat the v3 LEB128 scan by at least 1.5x. Host-gated like the
    // other timing asserts — single-core container jitter is not a
    // codec regression.
    if host_cpus() >= 4 {
        assert!(
            v4_vs_v3 >= 1.5,
            "v4 cold scan ({:.4}s) is only {v4_vs_v3:.2}x the v3 scan ({:.4}s); \
             the stream-vbyte decode must deliver >= 1.5x",
            cold.seconds,
            v3_cold.seconds
        );
    }
    let (parallel_vs_cold, parallel_skip) =
        cross_thread_speedup(4, 1.0 / parallel.seconds, 1.0 / cold.seconds);
    let (ingest_speedup, ingest_skip) =
        cross_thread_speedup(4, 1.0 / ingest_parallel.seconds, 1.0 / ingest_serial.seconds);
    println!(
        "pruning: {} candidate / {} skipped chunks ({} total, {} events in store)",
        candidates, stats.chunks_skipped, summary.chunks, summary.events
    );
    println!("cold v4 scan vs prv parse+filter:  {cold_vs_prv:.2}x");
    println!("cold v4 scan vs cold v1 scan:      {v2_vs_v1:.2}x");
    println!("cold v4 scan vs cold v3 scan:      {v4_vs_v3:.2}x");
    println!("cached re-query vs cold scan:      {cached_vs_cold:.2}x");
    println!(
        "payload bytes, filtered vs full:   {payload_filtered} / {payload_full} \
         ({:.1}%)",
        payload_filtered as f64 / payload_full as f64 * 100.0
    );
    println!("checksum verification overhead:    {:.2}%", crc_overhead * 100.0);
    let ratio = |v: &serde_json::Value| match v.as_f64() {
        Some(r) => format!("{r:.2}x"),
        None => "null (host too small)".to_string(),
    };
    println!("parallel(4) vs sequential cold:    {}", ratio(&parallel_vs_cold));
    println!("ingest 4-thread vs serial:         {}", ratio(&ingest_speedup));

    let out = serde_json::json!({
        "bench": "store_scan",
        "host": host_info(),
        "trace_events": summary.events,
        "chunks": summary.chunks,
        "raw_bytes": summary.raw_bytes,
        "stored_bytes": summary.stored_bytes,
        "query_candidate_chunks": candidates,
        "query_chunks_skipped": stats.chunks_skipped,
        "scenarios": scenarios,
        "cold_vs_prv_speedup": cold_vs_prv,
        "v2_vs_v1_speedup": v2_vs_v1,
        "v4_vs_v3_speedup": v4_vs_v3,
        "payload_bytes_filtered": payload_filtered,
        "payload_bytes_full": payload_full,
        "scratch_allocs": scratch_allocs,
        "cached_vs_cold_speedup": cached_vs_cold,
        "crc_verify_overhead": crc_overhead,
        "parallel_vs_cold_speedup": parallel_vs_cold,
        "parallel_vs_cold_skipped_reason": parallel_skip,
        "ingest_parallel_speedup": ingest_speedup,
        "ingest_parallel_skipped_reason": ingest_skip,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json");
    std::fs::write(path, serde_json::to_string_pretty(&out).expect("serialize"))
        .expect("write BENCH_store.json");
    println!("wrote {path}");
    std::fs::remove_dir_all(&dir).ok();
}
