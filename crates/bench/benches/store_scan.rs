//! Trace-store query throughput: the chunked binary `.mps` container
//! against the text `.prv` parse path, on a selective window query
//! over a STREAM-triad trace.
//!
//! Scenarios:
//!
//! * `prv_parse_filter` — parse the whole text trace, then filter
//!   linearly (the pre-store baseline every analysis paid);
//! * `mps_cold_scan` — fresh `StoreReader` per trial: footer pruning
//!   plus chunk decode for the surviving chunks;
//! * `mps_cached_scan` — the same reader re-queried: every surviving
//!   chunk served from the sharded block cache, no codec work;
//! * `mps_parallel_scan` — cold scan with the surviving chunks spread
//!   over 4 worker threads.
//!
//! Writes `BENCH_store.json`; the acceptance gate is
//! `cached_vs_cold_speedup > 1`.

use mempersp_core::{Machine, MachineConfig};
use mempersp_extrae::query::{EventClass, Query};
use mempersp_extrae::trace_format::{load_trace, save_trace};
use mempersp_store::{write_store, StoreReader};
use mempersp_workloads::StreamTriad;
use std::hint::black_box;
use std::time::Instant;

struct Measure {
    name: &'static str,
    /// Events the scenario's answer contained.
    matched: u64,
    seconds: f64,
}

impl Measure {
    fn per_sec(&self) -> f64 {
        self.matched as f64 / self.seconds
    }
}

/// Run a scenario `n` times and keep the fastest trial.
fn best_of(n: usize, mut f: impl FnMut() -> Measure) -> Measure {
    let mut best = f();
    for _ in 1..n {
        let m = f();
        if m.seconds < best.seconds {
            best = m;
        }
    }
    best
}

fn main() {
    // One mid-size trace, written in both containers.
    let mut mcfg = MachineConfig::small();
    mcfg.cores = 2;
    mcfg.counter_sample_period = mcfg.counter_sample_period.min(20_000);
    let mut w = StreamTriad::new(1 << 17, 4);
    let report = Machine::new(mcfg).run(&mut w);
    let dir = std::env::temp_dir().join(format!("mempersp_bench_store_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let prv = dir.join("bench.prv");
    let mps = dir.join("bench.mps");
    save_trace(&prv, &report.trace).expect("write prv");
    let summary = write_store(&mps, &report.trace).expect("write mps");
    let span = report.trace.events.last().map(|e| e.cycles).unwrap_or(0);

    // A selective query: PEBS samples in the middle quarter of the run
    // — the shape of a "zoom into one phase" analysis.
    let q = Query::all().in_time(span / 2, span / 2 + span / 4).with_kinds(&[EventClass::Pebs]);

    const TRIALS: usize = 5;
    let prv_parse = best_of(TRIALS, || {
        let t = Instant::now();
        let parsed = load_trace(&prv).expect("parse");
        let matched = parsed.events.iter().filter(|e| q.matches(e)).count() as u64;
        black_box(&parsed);
        Measure { name: "prv_parse_filter", matched, seconds: t.elapsed().as_secs_f64() }
    });

    let mut cold_stats = None;
    let cold = best_of(TRIALS, || {
        let reader = StoreReader::open(&mps).expect("open");
        let t = Instant::now();
        let (events, stats) = reader.query(&q).expect("query");
        let m = Measure {
            name: "mps_cold_scan",
            matched: events.len() as u64,
            seconds: t.elapsed().as_secs_f64(),
        };
        black_box(events);
        cold_stats = Some(stats);
        m
    });

    let warm_reader = StoreReader::open(&mps).expect("open");
    let (first, _) = warm_reader.query(&q).expect("warm-up query");
    black_box(first);
    let cached = best_of(TRIALS, || {
        let t = Instant::now();
        let (events, stats) = warm_reader.query(&q).expect("query");
        assert_eq!(stats.chunks_decoded, 0, "cached scan must not decode");
        let m = Measure {
            name: "mps_cached_scan",
            matched: events.len() as u64,
            seconds: t.elapsed().as_secs_f64(),
        };
        black_box(events);
        m
    });

    let parallel = best_of(TRIALS, || {
        let reader = StoreReader::open(&mps).expect("open");
        let t = Instant::now();
        let (events, _) = reader.query_parallel(&q, 4).expect("query");
        let m = Measure {
            name: "mps_parallel_scan",
            matched: events.len() as u64,
            seconds: t.elapsed().as_secs_f64(),
        };
        black_box(events);
        m
    });

    assert_eq!(prv_parse.matched, cold.matched, "containers must agree");
    assert_eq!(cold.matched, cached.matched);
    assert_eq!(cold.matched, parallel.matched);

    let measures = [&prv_parse, &cold, &cached, &parallel];
    let mut scenarios = Vec::new();
    for m in measures {
        println!(
            "{:<18} {:>9} matched {:>9.5}s {:>10.2} K matches/s",
            m.name,
            m.matched,
            m.seconds,
            m.per_sec() / 1e3
        );
        scenarios.push(serde_json::json!({
            "name": m.name,
            "matched_events": m.matched,
            "seconds": m.seconds,
            "matches_per_sec": m.per_sec(),
        }));
    }
    let stats = cold_stats.expect("cold scan ran");
    let cold_vs_prv = prv_parse.seconds / cold.seconds;
    let cached_vs_cold = cold.seconds / cached.seconds;
    println!(
        "pruning: {} decoded / {} skipped chunks ({} total, {} events in store)",
        stats.chunks_decoded,
        stats.chunks_skipped,
        summary.chunks,
        summary.events
    );
    println!("cold store scan vs prv parse+filter: {cold_vs_prv:.2}x");
    println!("cached re-query vs cold scan:        {cached_vs_cold:.2}x");

    let out = serde_json::json!({
        "bench": "store_scan",
        "trace_events": summary.events,
        "chunks": summary.chunks,
        "raw_bytes": summary.raw_bytes,
        "stored_bytes": summary.stored_bytes,
        "query_chunks_decoded": stats.chunks_decoded,
        "query_chunks_skipped": stats.chunks_skipped,
        "scenarios": scenarios,
        "cold_vs_prv_speedup": cold_vs_prv,
        "cached_vs_cold_speedup": cached_vs_cold,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json");
    std::fs::write(path, serde_json::to_string_pretty(&out).expect("serialize"))
        .expect("write BENCH_store.json");
    println!("wrote {path}");
    std::fs::remove_dir_all(&dir).ok();
}
