//! Ablation: machine-model knobs — prefetcher on/off and replacement
//! policy — and their effect on the reproduced HPCG behaviour
//! (DRAM-served fraction, wall cycles). These are the design choices
//! DESIGN.md §6 calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mempersp_core::{Machine, MachineConfig, PebsCoreSelect};
use mempersp_hpcg::{HpcgConfig, HpcgWorkload};
use mempersp_memsim::ReplacementPolicy;
use std::hint::black_box;

fn run(cfg: MachineConfig) -> (u64, f64) {
    let mut m = Machine::new(cfg);
    let mut w = HpcgWorkload::new(HpcgConfig {
        nx: 8,
        max_iters: 2,
        mg_levels: 2,
        group_allocations: true,
        use_mg: true,
    });
    let rep = m.run(&mut w);
    let t = rep.stats.total_cores();
    let dram_frac = t.served_dram as f64 / t.accesses().max(1) as f64;
    (rep.wall_cycles, dram_frac)
}

fn base_cfg() -> MachineConfig {
    let mut cfg = MachineConfig::small();
    cfg.pebs_cores = PebsCoreSelect::Only(0);
    cfg
}

fn bench(c: &mut Criterion) {
    // Report the behavioural side once.
    for pf in [true, false] {
        let mut cfg = base_cfg();
        cfg.hierarchy.prefetch.enabled = pf;
        let (cycles, dram) = run(cfg);
        eprintln!("prefetch {pf:>5}: {cycles:>10} cycles, {:.1} % served by DRAM", dram * 100.0);
    }
    for policy in [ReplacementPolicy::Lru, ReplacementPolicy::TreePlru, ReplacementPolicy::Fifo, ReplacementPolicy::Random] {
        let mut cfg = base_cfg();
        cfg.hierarchy.l1d.replacement = policy;
        cfg.hierarchy.l2.replacement = policy;
        cfg.hierarchy.l3.replacement = policy;
        let (cycles, dram) = run(cfg);
        eprintln!("{policy:?}: {cycles} cycles, {:.1} % DRAM", dram * 100.0);
    }

    let mut g = c.benchmark_group("ablation_machine");
    g.sample_size(10);
    for pf in [true, false] {
        g.bench_with_input(BenchmarkId::new("prefetch", pf), &pf, |b, &p| {
            b.iter(|| {
                let mut cfg = base_cfg();
                cfg.hierarchy.prefetch.enabled = p;
                black_box(run(cfg))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
