//! Experiment T-A: phase detection + traversal-bandwidth estimation
//! (the 4197 / 4315 / 6427 MB/s analysis).

use criterion::{criterion_group, criterion_main, Criterion};
use mempersp_bench::{run_analysis, Scale};
use mempersp_core::analysis::bandwidth::phase_bandwidths;
use mempersp_core::analysis::phases::iteration_phases;
use mempersp_hpcg::generate::expected_matrix_group_bytes;
use mempersp_hpcg::Geometry;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let analysis = run_analysis(Scale::Quick);
    let trace = &analysis.report.trace;

    // Verify the headline shape result before timing.
    let b = analysis.bandwidth("B").expect("B bandwidth");
    let a1 = analysis.bandwidth("a1").expect("a1 bandwidth");
    assert!(b > a1, "SpMV must out-stream SYMGS");
    eprintln!("bandwidths: a1 {a1:.0} MB/s, B {b:.0} MB/s (paper 4197 / 6427)");

    let bytes = expected_matrix_group_bytes(Geometry::cube(8));
    let mut g = c.benchmark_group("table_bandwidth");
    g.bench_function("phase_detection", |b| {
        b.iter(|| {
            black_box(iteration_phases(
                black_box(trace),
                "CG_iteration",
                "ComputeSYMGS_ref",
                "ComputeSPMV_ref",
                0,
            ))
        })
    });
    g.bench_function("bandwidth_estimation", |bch| {
        bch.iter(|| {
            black_box(phase_bandwidths(
                &analysis.folded_iteration,
                &analysis.phases,
                bytes,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
