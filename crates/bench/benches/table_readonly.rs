//! Experiment T-C: read-only-region detection (no store samples on
//! the matrix object during the execution phase).

use criterion::{criterion_group, criterion_main, Criterion};
use mempersp_bench::{run_analysis, Scale};
use mempersp_core::analysis::objects::object_stats;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let analysis = run_analysis(Scale::Quick);
    let stats = analysis.matrix_stats().expect("matrix sampled");
    assert!(stats.is_read_only(), "matrix must be read-only in the execution phase");
    eprintln!(
        "matrix object: {} loads, {} stores → read-only confirmed",
        stats.loads, stats.stores
    );

    let trace = &analysis.report.trace;
    let window = trace
        .region_id("ExecutionPhase")
        .map(|id| trace.region_instances(id, 0))
        .and_then(|v| v.first().copied());

    let mut g = c.benchmark_group("table_readonly");
    g.bench_function("object_stats_windowed", |b| {
        b.iter(|| black_box(object_stats(black_box(trace), window)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
