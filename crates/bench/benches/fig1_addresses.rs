//! Fig. 1, middle panel: folded address samples with object
//! annotation, plus the sweep-direction analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use mempersp_bench::{run_analysis, Scale};
use mempersp_core::analysis::sweeps::symgs_sweeps;
use mempersp_core::report::figure::addresses_csv;
use mempersp_core::SweepDirection;
use mempersp_hpcg::kernels::{SYMGS_BWD_LINES, SYMGS_FILE, SYMGS_FWD_LINES};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let analysis = run_analysis(Scale::Quick);
    let trace = &analysis.report.trace;
    let object = analysis.matrix_object.expect("matrix group present");

    // Verify the panel's claims before timing its regeneration.
    let (fwd, bwd) = analysis.sweeps.as_ref().expect("sweeps detected");
    assert_eq!(fwd.direction, SweepDirection::Forward);
    assert_eq!(bwd.direction, SweepDirection::Backward);
    eprintln!(
        "address panel: {} samples, sweeps fwd/bwd confirmed",
        analysis.folded_iteration.pooled.addr_points.len()
    );

    let mut g = c.benchmark_group("fig1_addresses");
    g.sample_size(20);
    g.bench_function("emit_addresses_csv", |b| {
        b.iter(|| black_box(addresses_csv(&analysis.folded_iteration, trace).len()))
    });
    g.bench_function("sweep_detection", |b| {
        b.iter(|| {
            black_box(symgs_sweeps(
                &analysis.folded_symgs,
                trace,
                object,
                SYMGS_FILE,
                SYMGS_FWD_LINES,
                SYMGS_BWD_LINES,
                (0.0, 1.0),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
