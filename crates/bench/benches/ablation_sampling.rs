//! Ablation: PEBS sampling period and multiplexing slice length.
//!
//! The paper's pitch is that *coarse* sampling suffices; this bench
//! measures the monitored run's cost at different sampling periods
//! and reports (via stderr) how the folded-panel density degrades —
//! the precision-vs-overhead trade-off called out in DESIGN.md §6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mempersp_core::{Machine, MachineConfig};
use mempersp_workloads::StreamTriad;
use std::hint::black_box;

fn machine_with_period(period: u64, slice: u64) -> MachineConfig {
    let mut cfg = MachineConfig::small();
    for e in &mut cfg.pebs_events {
        e.period = period;
    }
    cfg.mux_slice_cycles = slice;
    cfg
}

fn samples_at(period: u64, slice: u64) -> (usize, u64) {
    let mut m = Machine::new(machine_with_period(period, slice));
    let rep = m.run(&mut StreamTriad::new(1 << 14, 8));
    (rep.trace.pebs_events().count(), rep.wall_cycles)
}

fn bench(c: &mut Criterion) {
    // Report the precision side of the trade-off once.
    for period in [31u64, 127, 509, 2053] {
        let (n, cycles) = samples_at(period, 5_000);
        eprintln!("period {period:>5}: {n:>6} PEBS samples, {cycles} cycles");
    }
    for slice in [1_000u64, 10_000, 100_000] {
        let (n, _) = samples_at(127, slice);
        eprintln!("mux slice {slice:>7}: {n:>6} PEBS samples");
    }

    let mut g = c.benchmark_group("ablation_sampling");
    g.sample_size(10);
    for period in [31u64, 509, 2053] {
        g.bench_with_input(BenchmarkId::new("period", period), &period, |b, &p| {
            b.iter(|| black_box(samples_at(p, 5_000)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
