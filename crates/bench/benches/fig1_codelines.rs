//! Fig. 1, top panel: folded source-line samples.
//!
//! Benches the regeneration path (fold the CG iteration + emit the
//! line-panel CSV) on a trace produced once per process, and verifies
//! the panel's qualitative content (the five phases appear as bands of
//! their kernels' source lines).

use criterion::{criterion_group, criterion_main, Criterion};
use mempersp_bench::{run_analysis, Scale};
use mempersp_core::report::figure::lines_csv;
use mempersp_folding::{fold_region, FoldingConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let analysis = run_analysis(Scale::Quick);
    let trace = &analysis.report.trace;

    // Sanity: the panel contains lines from the expected files.
    let csv = lines_csv(&analysis.folded_iteration);
    assert!(csv.contains("ComputeSYMGS_ref.cpp"));
    assert!(csv.contains("ComputeSPMV_ref.cpp"));
    eprintln!(
        "line panel: {} samples over {} folded instances",
        analysis.folded_iteration.pooled.line_points.len(),
        analysis.folded_iteration.instances_used
    );

    let mut g = c.benchmark_group("fig1_codelines");
    g.sample_size(20);
    g.bench_function("fold_iteration", |b| {
        b.iter(|| {
            let folded =
                fold_region(black_box(trace), "CG_iteration", &FoldingConfig::default()).unwrap();
            black_box(folded.pooled.line_points.len())
        })
    });
    g.bench_function("emit_lines_csv", |b| {
        b.iter(|| black_box(lines_csv(&analysis.folded_iteration).len()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
