//! Deterministic synthetic trace generation for store benchmarks.
//!
//! The simulator produces realistic traces, but at ~100 K events/sec
//! of *simulation* it cannot feed gigabyte-scale store benchmarks.
//! [`EventGen`] emits a configurable event mix — region boundaries,
//! PEBS memory samples, counter samples, alloc/free pairs, user
//! events, mux switches — from a seeded xorshift generator at tens of
//! millions of events per second, as an iterator, so a multi-GB trace
//! streams straight into a `StoreWriter` without ever being resident.
//!
//! The accompanying header ([`GenConfig::header`]) interns the region
//! names and registers the objects the events reference, so predicate
//! queries (kind, core, time window, object) behave exactly as they
//! would on a simulator trace.

use mempersp_extrae::events::{EventPayload, RegionId, TraceEvent};
use mempersp_extrae::source::Ip;
use mempersp_extrae::tracer::{Trace, Tracer, TracerConfig};
use mempersp_extrae::ObjectId;
use mempersp_memsim::MemLevel;
use mempersp_pebs::{CounterSnapshot, PebsSample};

/// Region names the generator cycles through.
const REGIONS: &[&str] =
    &["gen_compute", "gen_exchange", "gen_reduce", "gen_smooth", "gen_residual"];
/// Synthetic objects PEBS samples resolve into.
const NUM_OBJECTS: u32 = 16;

/// Shape of a generated trace.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Total events to emit.
    pub events: u64,
    /// Cores the events round-robin over.
    pub cores: usize,
    /// RNG seed; equal seeds give byte-identical traces.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { events: 1_000_000, cores: 4, seed: 42 }
    }
}

impl GenConfig {
    /// The header trace matching the generated stream: region names
    /// interned, objects registered, zero events.
    pub fn header(&self) -> Trace {
        let mut t = Tracer::new(TracerConfig::default(), self.cores.max(1));
        for name in REGIONS {
            t.region(name);
        }
        for i in 0..NUM_OBJECTS {
            t.register_static(
                &format!("gen_array_{i}"),
                0x10_0000 + u64::from(i) * 0x10_0000,
                0x10_0000,
            );
        }
        t.finish(&format!(
            "synthetic gentrace: {} events, {} cores, seed {}",
            self.events, self.cores, self.seed
        ))
    }

    /// The event stream.
    pub fn events(&self) -> EventGen {
        EventGen {
            remaining: self.events,
            cores: self.cores.max(1),
            state: self.seed | 1,
            clock: 1_000,
            emitted: 0,
            counters: [0u64; 12],
        }
    }
}

/// Iterator over the synthetic event stream (see [`GenConfig`]).
pub struct EventGen {
    remaining: u64,
    cores: usize,
    state: u64,
    clock: u64,
    emitted: u64,
    /// Monotonic per-run counter values shared across cores — close
    /// enough to real counter streams for codec purposes.
    counters: [u64; 12],
}

impl EventGen {
    /// xorshift64*; deterministic and fast.
    fn rng(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn counters(&mut self) -> CounterSnapshot {
        for (i, c) in self.counters.iter_mut().enumerate() {
            *c += 100 + (i as u64) * 7;
        }
        CounterSnapshot::from_values(self.counters)
    }
}

impl Iterator for EventGen {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let r = self.rng();
        self.clock += 50 + (r >> 32) % 2_000;
        let cycles = self.clock;
        let core = (self.emitted % self.cores as u64) as usize;
        self.emitted += 1;

        // Event mix (per mille): region boundaries 200, PEBS 450,
        // counter samples 100, user 150, alloc/free 60, mux 40 —
        // PEBS-heavy like a memory-sampling run.
        let roll = r % 1000;
        let payload = if roll < 200 {
            let region = RegionId((r >> 10) as u32 % REGIONS.len() as u32);
            let counters = self.counters();
            if roll % 2 == 0 {
                EventPayload::RegionEnter { region, counters }
            } else {
                EventPayload::RegionExit { region, counters }
            }
        } else if roll < 650 {
            let obj = (r >> 10) as u32 % (NUM_OBJECTS * 4 / 3); // ~75% resolve
            let object = (obj < NUM_OBJECTS).then_some(ObjectId(obj));
            let addr = 0x10_0000
                + u64::from(obj % NUM_OBJECTS) * 0x10_0000
                + ((r >> 20) % 0x10_0000 & !7);
            EventPayload::Pebs {
                sample: PebsSample {
                    timestamp: cycles,
                    core,
                    ip: 0x40_0000 + (r >> 40) % 0x1000,
                    addr,
                    size: 8,
                    is_store: roll % 4 == 0,
                    latency: (10 + (r >> 15) % 300) as u32,
                    source: match (r >> 8) % 100 {
                        0..=59 => MemLevel::L1,
                        60..=84 => MemLevel::L2,
                        85..=94 => MemLevel::L3,
                        _ => MemLevel::Dram,
                    },
                    tlb_miss: (r >> 9) % 50 == 0,
                },
                object,
            }
        } else if roll < 750 {
            let depth = 1 + (r >> 16) as usize % 3;
            EventPayload::CounterSample {
                ip: Ip(0x40_0000 + (r >> 40) % 0x1000),
                counters: self.counters(),
                stack: (0..depth)
                    .map(|d| RegionId(((r >> (20 + d)) as u32) % REGIONS.len() as u32))
                    .collect(),
            }
        } else if roll < 900 {
            EventPayload::User { kind: 1 + (r >> 12) as u32 % 4, value: r >> 24 }
        } else if roll < 930 {
            EventPayload::Alloc {
                base: 0x7f00_0000_0000 + (r >> 8) % 0x1_0000_0000,
                size: 64 + (r >> 16) % 65_536,
                callsite: Ip(0x40_0000 + (r >> 44) % 0x1000),
            }
        } else if roll < 960 {
            EventPayload::Free { base: 0x7f00_0000_0000 + (r >> 8) % 0x1_0000_0000 }
        } else {
            EventPayload::MuxSwitch {
                event_index: (r >> 12) as usize % 4,
                label: format!("grp{}", (r >> 12) % 4),
            }
        };
        Some(TraceEvent { cycles, core, payload })
    }
}

/// Generate a fully materialized trace (header + events). Fine up to
/// a few million events; stream [`GenConfig::events`] into an
/// `EventSink` beyond that.
pub fn generate(cfg: &GenConfig) -> Trace {
    let mut t = cfg.header();
    t.events = cfg.events().collect();
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_extrae::query::{EventClass, Query};

    #[test]
    fn deterministic_and_sized() {
        let cfg = GenConfig { events: 10_000, cores: 4, seed: 7 };
        let a: Vec<_> = cfg.events().collect();
        let b: Vec<_> = cfg.events().collect();
        assert_eq!(a.len(), 10_000);
        assert_eq!(a, b, "same seed, same stream");
        let c: Vec<_> = GenConfig { seed: 8, ..cfg }.events().take(100).collect();
        assert_ne!(a[..100], c[..], "different seed, different stream");
    }

    #[test]
    fn mix_covers_every_event_class_and_timestamps_increase() {
        let cfg = GenConfig { events: 50_000, cores: 4, seed: 42 };
        let events: Vec<_> = cfg.events().collect();
        let mut seen = [false; EventClass::ALL.len()];
        let mut prev = 0;
        for e in &events {
            seen[EventClass::of(&e.payload) as usize] = true;
            assert!(e.cycles > prev, "timestamps must be strictly increasing");
            prev = e.cycles;
            assert!(e.core < 4);
        }
        assert!(seen.iter().all(|&s| s), "mix must cover all classes: {seen:?}");
    }

    #[test]
    fn header_supports_object_queries() {
        let cfg = GenConfig { events: 20_000, cores: 2, seed: 1 };
        let t = generate(&cfg);
        assert_eq!(t.events.len(), 20_000);
        assert!(t.objects.all().len() >= NUM_OBJECTS as usize);
        let q = Query::all().touching_object(ObjectId(3));
        let hits = t.events.iter().filter(|e| q.matches(e)).count();
        assert!(hits > 0, "object 3 must receive samples");
    }
}
