//! Shared helpers for the benchmark + experiment-regeneration
//! harness. Each table/figure of the paper has one Criterion bench
//! (timing the regeneration) and one binary (printing the
//! paper-vs-measured rows recorded in EXPERIMENTS.md).

use mempersp_core::workflow::{analyze_hpcg, HpcgAnalysis};
use mempersp_core::MachineConfig;
use mempersp_hpcg::HpcgConfig;

pub mod gentrace;

/// The experiment scales used by the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-fast: nx=8, 3 iterations, 2 cores (CI-friendly).
    Quick,
    /// The EXPERIMENTS.md default: nx=16, 6 iterations, 4 cores.
    Analysis,
    /// Closer to the paper's setup: nx=32, 10 iterations, 4 cores.
    Large,
}

impl Scale {
    pub fn from_env() -> Self {
        match std::env::var("MEMPERSP_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            Ok("large") => Scale::Large,
            _ => Scale::Analysis,
        }
    }

    pub fn hpcg(&self) -> HpcgConfig {
        match self {
            Scale::Quick => HpcgConfig {
                nx: 8,
                max_iters: 3,
                mg_levels: 3,
                group_allocations: true,
                use_mg: true,
            },
            Scale::Analysis => HpcgConfig {
                nx: 16,
                max_iters: 6,
                mg_levels: 4,
                group_allocations: true,
                use_mg: true,
            },
            Scale::Large => HpcgConfig {
                nx: 48,
                max_iters: 4,
                mg_levels: 4,
                group_allocations: true,
                use_mg: true,
            },
        }
    }

    pub fn machine(&self) -> MachineConfig {
        match self {
            Scale::Quick => {
                let mut m = MachineConfig::small();
                m.cores = 2;
                m
            }
            Scale::Analysis => {
                let mut m = MachineConfig::haswell(4);
                m.counter_sample_period = 20_000;
                m.mux_slice_cycles = 50_000;
                m
            }
            Scale::Large => {
                let mut m = MachineConfig::haswell(4);
                m.counter_sample_period = 20_000;
                m.mux_slice_cycles = 50_000;
                // Cores are simulated through their solves one after
                // another, so the traced rank would otherwise enjoy the
                // whole shared L3; give it its per-core slice instead,
                // which also restores the paper's matrix:LLC capacity
                // ratio (60 MB : 6 MB ≈ the paper's 617 MB : 30 MB).
                m.hierarchy.l3.size_bytes = 6 * 1024 * 1024;
                m
            }
        }
    }
}

/// Run the full work-flow at a given scale.
pub fn run_analysis(scale: Scale) -> HpcgAnalysis {
    analyze_hpcg(scale.machine(), scale.hpcg())
}

/// Run with grouping disabled (experiment T-B).
pub fn run_ungrouped(scale: Scale) -> HpcgAnalysis {
    let mut cfg = scale.hpcg();
    cfg.group_allocations = false;
    analyze_hpcg(scale.machine(), cfg)
}

/// Number of CPUs the host actually offers this process.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The CPU model string, from `/proc/cpuinfo` where available.
pub fn cpu_model() -> Option<String> {
    let info = std::fs::read_to_string("/proc/cpuinfo").ok()?;
    info.lines()
        .find(|l| l.starts_with("model name") || l.starts_with("Model"))
        .and_then(|l| l.split_once(':'))
        .map(|(_, v)| v.trim().to_string())
}

/// Does the host look like a VM/container guest? (`hypervisor` cpu
/// flag — best-effort; bare-metal containers still report false.)
pub fn is_virtualized() -> bool {
    std::fs::read_to_string("/proc/cpuinfo")
        .map(|info| {
            info.lines()
                .filter(|l| l.starts_with("flags"))
                .any(|l| l.split_whitespace().any(|f| f == "hypervisor"))
        })
        .unwrap_or(false)
}

/// Peak resident set of this process so far, in bytes (`VmHWM` from
/// `/proc/self/status`). `None` where procfs is unavailable (non-Linux
/// hosts). Note the high-water mark is monotone for the process
/// lifetime: to compare scenarios within one run, measure the
/// low-memory scenario first.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Host block for the `BENCH_*.json` summaries, so numbers are never
/// read without knowing what machine produced them: logical CPU
/// count, CPU model, whether the run is virtualized, and the process
/// peak RSS at emission time. A `host_cpus: 1` summary with null
/// cross-thread ratios is a single-core runner, not a regression.
pub fn host_info() -> serde_json::Value {
    serde_json::json!({
        "host_cpus": host_cpus(),
        "cpu_model": cpu_model(),
        "virtualized": is_virtualized(),
        "peak_rss_bytes": peak_rss_bytes(),
        "simd": mempersp_store::simd_level_name(),
    })
}

/// Cross-thread speedup field for the BENCH_*.json summaries.
///
/// A `threads4 / threads1` ratio measured on a host with fewer CPUs
/// than worker threads is noise, not a speedup — the workers time-share
/// the same cores. In that case the metric is `null` and an explicit
/// `*_skipped_reason` string records why, so downstream tooling never
/// mistakes an oversubscribed run for a regression.
pub fn cross_thread_speedup(
    threads: usize,
    faster: f64,
    baseline: f64,
) -> (serde_json::Value, Option<String>) {
    let cpus = host_cpus();
    if cpus < threads {
        (
            serde_json::Value::Null,
            Some(format!(
                "host_cpus {cpus} < threads {threads}: cross-thread ratio not meaningful"
            )),
        )
    } else {
        (serde_json::Value::from(faster / baseline), None)
    }
}

/// Format a paper-vs-measured row.
pub fn row(metric: &str, paper: &str, measured: &str, verdict: &str) -> String {
    format!("{metric:<44} | {paper:>18} | {measured:>18} | {verdict}")
}

/// Header for the comparison tables.
pub fn header() -> String {
    format!(
        "{}\n{}",
        row("metric", "paper", "measured", "shape holds?"),
        "-".repeat(100)
    )
}
