//! Generate a large synthetic `.mps` trace for store benchmarking.
//!
//! ```sh
//! cargo run --release -p mempersp-bench --bin gentrace -- \
//!     --events 1000000 --cores 4 --seed 42 -o /tmp/gen.mps
//! # sharded, 4 compressor threads:
//! cargo run --release -p mempersp-bench --bin gentrace -- \
//!     --events 50000000 --shard-events 16000000 --threads 4 -o /tmp/gen.mps.d
//! ```
//!
//! Events stream from the generator straight into the store writer, so
//! memory use stays flat no matter how many events are requested.

use mempersp_bench::gentrace::GenConfig;
use mempersp_store::{ShardedWriter, StoreWriter, DEFAULT_CHUNK_BYTES, SHARD_DIR_SUFFIX};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: gentrace [--events N] [--cores N] [--seed N] [--threads N|auto] \
         [--shard-events N] -o OUT[.mps|.mps.d]"
    );
    std::process::exit(2);
}

fn parse_threads(v: &str) -> usize {
    if v == "auto" {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        v.parse().unwrap_or_else(|_| usage())
    }
}

fn main() {
    let mut cfg = GenConfig::default();
    let mut out: Option<PathBuf> = None;
    let mut threads = 1usize;
    let mut shard_events: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--events" => cfg.events = val("--events").parse().unwrap_or_else(|_| usage()),
            "--cores" => cfg.cores = val("--cores").parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = parse_threads(&val("--threads")),
            "--shard-events" => {
                shard_events = Some(val("--shard-events").parse().unwrap_or_else(|_| usage()))
            }
            "-o" | "--out" => out = Some(PathBuf::from(val("-o"))),
            "-h" | "--help" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    let out = out.unwrap_or_else(|| usage());

    let start = std::time::Instant::now();
    let header = cfg.header();
    let sharded = shard_events.is_some()
        || out.to_string_lossy().ends_with(SHARD_DIR_SUFFIX);
    let result = if sharded {
        let per_shard =
            shard_events.unwrap_or(mempersp_store::shard::DEFAULT_EVENTS_PER_SHARD);
        let mut w = ShardedWriter::with_options(&out, DEFAULT_CHUNK_BYTES, threads, per_shard)
            .expect("create sharded store");
        for e in cfg.events() {
            w.append(&e).expect("append");
        }
        w.finish(&header).expect("finish")
    } else {
        let mut w = StoreWriter::with_threads(&out, DEFAULT_CHUNK_BYTES, threads)
            .expect("create store");
        for e in cfg.events() {
            w.append(&e).expect("append");
        }
        w.finish(&header).expect("finish")
    };
    let secs = start.elapsed().as_secs_f64();
    eprintln!(
        "wrote {} events / {} chunks ({:.1} MB raw -> {:.1} MB stored) to {} \
         in {:.2}s ({:.1} M events/s)",
        result.events,
        result.chunks,
        result.raw_bytes as f64 / 1e6,
        result.stored_bytes as f64 / 1e6,
        out.display(),
        secs,
        result.events as f64 / secs / 1e6,
    );
    if let Some(rss) = mempersp_bench::peak_rss_bytes() {
        eprintln!("peak RSS {:.1} MB", rss as f64 / 1e6);
    }
}
