//! Experiment T-A: per-phase traversal bandwidths (Section III's
//! 4197 / 4315 / 6427 MB/s numbers) — paper vs measured.

use mempersp_bench::{header, row, run_analysis, Scale};

fn main() {
    let a = run_analysis(Scale::from_env());
    let a1 = a.bandwidth("a1").unwrap_or(0.0);
    let a2 = a.bandwidth("a2").unwrap_or(0.0);
    let b = a.bandwidth("B").unwrap_or(0.0);
    let e = a.bandwidth("E").unwrap_or(0.0);

    println!("T-A: traversal bandwidths of the folded phases");
    println!("{}", header());
    println!("{}", row("a1 (SYMGS forward sweep) MB/s", "4197", &format!("{a1:.0}"), "-"));
    println!("{}", row("a2 (SYMGS backward sweep) MB/s", "4315", &format!("{a2:.0}"), "-"));
    println!("{}", row("B (SpMV) MB/s", "6427", &format!("{b:.0}"), "-"));
    println!("{}", row("E (SpMV, CG level) MB/s", "n/a", &format!("{e:.0}"), "-"));
    let paper_ratio = 6427.0 / 4197.0f64.max(4315.0);
    let ratio = b / a1.max(a2);
    println!(
        "{}",
        row(
            "SpMV / SYMGS bandwidth ratio",
            &format!("{paper_ratio:.2}"),
            &format!("{ratio:.2}"),
            if ratio > 1.1 { "yes (SpMV wins)" } else { "NO" },
        )
    );
    let paper_sweeps = 4315.0 / 4197.0;
    let sweeps = a1.max(a2) / a1.min(a2).max(1e-9);
    println!(
        "{}",
        row(
            "fwd vs bwd sweep ratio",
            &format!("{paper_sweeps:.3}"),
            &format!("{sweeps:.3}"),
            if sweeps < 1.6 { "yes (comparable)" } else { "NO" },
        )
    );
    println!(
        "\nmean MIPS {:.0} (paper plateau ≈1500); IPC at nominal {:.2} (paper ≈0.6)",
        a.folded_iteration.mean_mips(),
        a.folded_iteration.mean_mips() / (a.report.trace.meta.freq_mhz as f64)
    );
}
