//! Experiment T-C: the read-only region — no store samples land in
//! the matrix structure during the execution phase, while the vector
//! region sees loads and stores (Fig. 1's "no black points in the
//! lower part").

use mempersp_bench::{header, row, run_analysis, Scale};

fn main() {
    let a = run_analysis(Scale::from_env());

    println!("T-C: load/store split per data object (execution phase)");
    println!("{}", header());
    let matrix = a.matrix_stats();
    let (loads, stores) = matrix.map(|m| (m.loads, m.stores)).unwrap_or((0, 0));
    println!(
        "{}",
        row(
            "store samples in matrix region",
            "0 (no black points)",
            &stores.to_string(),
            if stores == 0 && loads > 0 { "yes" } else { "NO" },
        )
    );
    println!("{}", row("load samples in matrix region", ">0", &loads.to_string(), "-"));
    let vec_stores: u64 = a
        .objects
        .iter()
        .filter(|o| o.name.starts_with("CG_ref.cpp") || o.name.starts_with("GenerateCoarse"))
        .map(|o| o.stores)
        .sum();
    println!(
        "{}",
        row(
            "store samples in vector region",
            ">0",
            &vec_stores.to_string(),
            if vec_stores > 0 { "yes" } else { "NO" },
        )
    );

    println!("\nper-object detail:");
    for o in a.objects.iter().take(8) {
        println!(
            "  {:<44} loads {:>6} stores {:>6}{}",
            o.name,
            o.loads,
            o.stores,
            if o.is_read_only() { "  [read-only → NVM candidate, as §IV notes]" } else { "" }
        );
    }
}
