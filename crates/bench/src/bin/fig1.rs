//! Regenerate Fig. 1 (all three panels): writes the CSV + gnuplot
//! bundle and prints the phase/sweep/performance summary.
//!
//! ```sh
//! MEMPERSP_SCALE=large cargo run --release -p mempersp-bench --bin fig1
//! ```

use mempersp_bench::{run_analysis, Scale};
use mempersp_core::report::{ascii, figure};

fn main() {
    let scale = Scale::from_env();
    eprintln!("regenerating Fig. 1 at {scale:?} scale ...");
    let a = run_analysis(scale);

    println!("{}", a.summary());
    println!("-- folded code-line panel (top panel of Fig. 1) -------------");
    print!("{}", ascii::lines_panel(&a.folded_iteration, 96, 24));
    println!("-- folded address panel (middle panel of Fig. 1) -----------");
    print!("{}", ascii::address_panel(&a.folded_iteration, 96, 20));
    println!("-- folded performance panel (bottom panel of Fig. 1) -------");
    print!("{}", ascii::performance_panel(&a.folded_iteration, 80));

    let dir = std::path::Path::new("target/fig1");
    let files = figure::write_figure_bundle(
        dir,
        "fig1",
        "HPCG — folded CG iteration (Servat et al. ICPP'17, Fig. 1)",
        &a.folded_iteration,
        &a.report.trace,
        &a.phases,
    )
    .expect("write bundle");
    std::fs::write(
        dir.join("fig1_summary.json"),
        serde_json::to_string_pretty(&a.json_summary()).expect("serialize"),
    )
    .expect("write json summary");
    eprintln!("wrote {} files (+ fig1_summary.json) under {}", files.len(), dir.display());
}
