//! Experiment T-B: object-resolution before/after allocation grouping
//! (the paper's "preliminary analysis" + the 617 MB / 89 MB labels).

use mempersp_bench::{header, row, run_analysis, run_ungrouped, Scale};
use mempersp_hpcg::generate::{expected_map_group_bytes, expected_matrix_group_bytes};
use mempersp_hpcg::Geometry;

fn main() {
    let scale = Scale::from_env();
    let grouped = run_analysis(scale);
    let ungrouped = run_ungrouped(scale);
    let nx = scale.hpcg().nx;
    let geom = Geometry::cube(nx);

    println!("T-B: PEBS sample → data-object resolution (nx = {nx})");
    println!("{}", header());
    println!(
        "{}",
        row(
            "resolved fraction, reference allocation",
            "\"most not associated\"",
            &format!("{:.1} %", 100.0 * ungrouped.resolved_fraction),
            if ungrouped.resolved_fraction < 0.6 { "yes (mostly unresolved)" } else { "NO" },
        )
    );
    println!(
        "{}",
        row(
            "resolved fraction, grouped allocations",
            "(figure resolves)",
            &format!("{:.1} %", 100.0 * grouped.resolved_fraction),
            if grouped.resolved_fraction > 0.9 { "yes" } else { "NO" },
        )
    );

    // Group sizes: the formulas evaluated at the paper's nx=104
    // reproduce its labels exactly; at the harness scale we print both.
    let m104 = expected_matrix_group_bytes(Geometry::cube(104)) as f64 / 1e6;
    let p104 = expected_map_group_bytes(Geometry::cube(104)) as f64 / 1e6;
    let m = expected_matrix_group_bytes(geom) as f64 / 1e6;
    let p = expected_map_group_bytes(geom) as f64 / 1e6;
    println!(
        "{}",
        row(
            "matrix group size at nx=104 (MB)",
            "617",
            &format!("{m104:.0}"),
            if (m104 - 617.0).abs() < 15.0 { "yes" } else { "NO" },
        )
    );
    println!(
        "{}",
        row(
            "map group size at nx=104 (MB)",
            "89",
            &format!("{p104:.0}"),
            if (p104 - 89.0).abs() < 5.0 { "yes" } else { "NO" },
        )
    );
    println!("{}", row(&format!("matrix group size at nx={nx} (MB)"), "-", &format!("{m:.1}"), "-"));
    println!("{}", row(&format!("map group size at nx={nx} (MB)"), "-", &format!("{p:.1}"), "-"));

    if let Some(id) = grouped.matrix_object {
        let o = grouped.report.trace.objects.get(id).unwrap();
        println!("\nfigure label reproduced: {}", o.figure_label());
    }
    if let Some(id) = grouped.map_object {
        let o = grouped.report.trace.objects.get(id).unwrap();
        println!("figure label reproduced: {}", o.figure_label());
    }
}
