//! Data structures of the benchmark: vectors and the sparse operator,
//! each pairing real Rust storage (the numerics are genuine) with
//! simulated addresses (what the hierarchy simulator and PEBS see).

use mempersp_extrae::{AppContext, CodeLocation};

/// Maximum stencil width: 27 nonzeros per row.
pub const MAX_NNZ: usize = 27;

/// A dense vector with a simulated base address.
#[derive(Debug, Clone)]
pub struct SimVector {
    data: Vec<f64>,
    base: u64,
}

impl SimVector {
    /// Allocate a zero vector of `n` doubles through the context's
    /// interposed `malloc` on `core` (so it becomes a tracked data
    /// object when it meets the threshold).
    pub fn new(ctx: &mut dyn AppContext, core: usize, n: usize, callsite: &CodeLocation) -> Self {
        let base = ctx.malloc(core, (n * 8) as u64, callsite);
        Self { data: vec![0.0; n], base }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Simulated address of element `i`.
    pub fn addr(&self, i: usize) -> u64 {
        debug_assert!(i < self.data.len());
        self.base + (i * 8) as u64
    }

    /// Simulated base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Real value of element `i` (no simulated access).
    pub fn get(&self, i: usize) -> f64 {
        self.data[i]
    }

    /// Set the real value of element `i` (no simulated access).
    pub fn set(&mut self, i: usize, v: f64) {
        self.data[i] = v;
    }

    /// Fill with a constant (no simulated accesses; setup-phase helper).
    pub fn fill(&mut self, v: f64) {
        self.data.iter_mut().for_each(|x| *x = v);
    }

    /// Euclidean norm computed host-side (for validation only).
    pub fn norm2_host(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// The 27-point stencil operator in HPCG's reference layout: one value
/// array and one column-index array *per row* (stored packed here, but
/// each row carries its own simulated allocation address, reproducing
/// the reference code's `new double[27]` per row).
#[derive(Debug, Clone)]
pub struct SparseMatrix {
    nrows: usize,
    /// Nonzeros per row.
    nnz: Vec<u8>,
    /// Position of the diagonal within each row's nonzeros.
    diag_pos: Vec<u8>,
    /// Packed values, stride [`MAX_NNZ`].
    values: Vec<f64>,
    /// Packed local column indices, stride [`MAX_NNZ`].
    cols: Vec<u32>,
    /// Simulated base address of each row's value array.
    values_addr: Vec<u64>,
    /// Simulated base address of each row's column-index array.
    cols_addr: Vec<u64>,
}

impl SparseMatrix {
    /// Build an empty matrix shell for `nrows` rows. Row addresses are
    /// filled by the problem generator as it performs the per-row
    /// simulated allocations.
    pub fn with_rows(nrows: usize) -> Self {
        Self {
            nrows,
            nnz: vec![0; nrows],
            diag_pos: vec![0; nrows],
            values: vec![0.0; nrows * MAX_NNZ],
            cols: vec![0; nrows * MAX_NNZ],
            values_addr: vec![0; nrows],
            cols_addr: vec![0; nrows],
        }
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Total stored nonzeros.
    pub fn total_nnz(&self) -> usize {
        self.nnz.iter().map(|&n| n as usize).sum()
    }

    /// Define row `i`: its column indices and values (`cols` must be
    /// sorted; the diagonal must be present). Called by the generator.
    pub fn set_row(&mut self, i: usize, entries: &[(u32, f64)], values_addr: u64, cols_addr: u64) {
        assert!(entries.len() <= MAX_NNZ, "row {i} has too many nonzeros");
        let mut diag = None;
        for (k, &(c, v)) in entries.iter().enumerate() {
            self.values[i * MAX_NNZ + k] = v;
            self.cols[i * MAX_NNZ + k] = c;
            if c as usize == i {
                diag = Some(k as u8);
            }
        }
        self.nnz[i] = entries.len() as u8;
        self.diag_pos[i] = diag.unwrap_or_else(|| panic!("row {i} has no diagonal entry"));
        self.values_addr[i] = values_addr;
        self.cols_addr[i] = cols_addr;
    }

    /// Nonzero count of row `i`.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.nnz[i] as usize
    }

    /// Values of row `i`.
    pub fn row_values(&self, i: usize) -> &[f64] {
        &self.values[i * MAX_NNZ..i * MAX_NNZ + self.nnz[i] as usize]
    }

    /// Column indices of row `i`.
    pub fn row_cols(&self, i: usize) -> &[u32] {
        &self.cols[i * MAX_NNZ..i * MAX_NNZ + self.nnz[i] as usize]
    }

    /// Diagonal value of row `i`.
    pub fn diag(&self, i: usize) -> f64 {
        self.values[i * MAX_NNZ + self.diag_pos[i] as usize]
    }

    /// Simulated address of the `k`-th value of row `i`.
    pub fn value_addr(&self, i: usize, k: usize) -> u64 {
        self.values_addr[i] + (k * 8) as u64
    }

    /// Simulated address of the `k`-th column index of row `i`
    /// (4-byte local indices, as HPCG's `local_int_t`).
    pub fn col_addr(&self, i: usize, k: usize) -> u64 {
        self.cols_addr[i] + (k * 4) as u64
    }

    /// Host-side y = A·x (no simulated accesses; for validation).
    pub fn spmv_host(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nrows);
        assert_eq!(y.len(), self.nrows);
        for i in 0..self.nrows {
            let mut sum = 0.0;
            for k in 0..self.row_nnz(i) {
                sum += self.values[i * MAX_NNZ + k] * x[self.cols[i * MAX_NNZ + k] as usize];
            }
            y[i] = sum;
        }
    }
}

/// One level of the multigrid hierarchy.
#[derive(Debug, Clone)]
pub struct MgLevel {
    pub geom: crate::geometry::Geometry,
    pub a: SparseMatrix,
    /// Fine row index of each coarse row (injection operator), with
    /// its simulated base address.
    pub f2c: Vec<u32>,
    pub f2c_base: u64,
    /// Work vectors of this level: A·xf, the restricted residual and
    /// the coarse solution (only populated below the finest level
    /// where needed).
    pub axf: SimVector,
    pub rc: Option<SimVector>,
    pub xc: Option<SimVector>,
}

/// A rank's full problem: the MG hierarchy plus the CG work vectors.
#[derive(Debug, Clone)]
pub struct Problem {
    /// Fine-to-coarse hierarchy; `levels[0]` is the finest.
    pub levels: Vec<MgLevel>,
    /// Right-hand side.
    pub b: SimVector,
    /// Solution iterate.
    pub x: SimVector,
    /// CG work vectors.
    pub r: SimVector,
    pub z: SimVector,
    pub p: SimVector,
    pub ap: SimVector,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_row_accessors() {
        let mut m = SparseMatrix::with_rows(3);
        m.set_row(0, &[(0, 26.0), (1, -1.0)], 0x1000, 0x2000);
        m.set_row(1, &[(0, -1.0), (1, 26.0), (2, -1.0)], 0x1100, 0x2100);
        m.set_row(2, &[(1, -1.0), (2, 26.0)], 0x1200, 0x2200);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.total_nnz(), 7);
        assert_eq!(m.row_nnz(1), 3);
        assert_eq!(m.diag(1), 26.0);
        assert_eq!(m.row_cols(2), &[1, 2]);
        assert_eq!(m.value_addr(1, 2), 0x1110);
        assert_eq!(m.col_addr(1, 1), 0x2104);
    }

    #[test]
    fn host_spmv_tridiagonal() {
        let mut m = SparseMatrix::with_rows(3);
        m.set_row(0, &[(0, 2.0), (1, -1.0)], 0, 0);
        m.set_row(1, &[(0, -1.0), (1, 2.0), (2, -1.0)], 0, 0);
        m.set_row(2, &[(1, -1.0), (2, 2.0)], 0, 0);
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        m.spmv_host(&x, &mut y);
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "no diagonal")]
    fn missing_diagonal_panics() {
        let mut m = SparseMatrix::with_rows(2);
        m.set_row(0, &[(1, -1.0)], 0, 0);
    }
}
