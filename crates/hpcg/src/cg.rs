//! `CG_ref` — the preconditioned conjugate-gradient driver.
//!
//! Follows the HPCG 3.0 reference loop: each iteration applies the MG
//! preconditioner, updates the search direction, performs the SpMV
//! (the figure's label E), and updates the iterate and the residual.
//! Each loop body is wrapped in the `CG_iteration` region — the
//! repetitive region the Folding mechanism folds in the paper's
//! analysis.

use crate::kernels::{compute_dot, compute_spmv, compute_symgs, compute_waxpby, KernelIps};
use crate::mg::compute_mg;
use crate::regions;
use crate::structures::Problem;
use mempersp_extrae::AppContext;

/// Result of a CG solve on one rank.
#[derive(Debug, Clone, PartialEq)]
pub struct CgResult {
    pub iterations: usize,
    /// ‖r‖₂ after setup (index 0) and after each iteration.
    pub residuals: Vec<f64>,
    /// Max-norm error of the final iterate against the exact solution
    /// (the ones vector).
    pub max_error: f64,
}

impl CgResult {
    /// Relative residual reduction ‖r_final‖/‖r_0‖.
    pub fn reduction(&self) -> f64 {
        let first = *self.residuals.first().expect("at least the initial residual");
        let last = *self.residuals.last().expect("non-empty");
        if first == 0.0 {
            0.0
        } else {
            last / first
        }
    }
}

/// Run `max_iters` preconditioned CG iterations on one rank's problem
/// (`use_mg = false` degrades the preconditioner to a single SYMGS, an
/// ablation knob).
pub fn cg_solve(
    ctx: &mut dyn AppContext,
    core: usize,
    ips: &KernelIps,
    prob: &mut Problem,
    max_iters: usize,
    use_mg: bool,
) -> CgResult {
    let mut residuals = Vec::with_capacity(max_iters + 1);

    // Setup (reference lines 86-92): p = x, Ap = A·p, r = b − Ap.
    compute_waxpby(ctx, core, ips, 1.0, &prob.x, 0.0, &prob.x, &mut prob.p);
    {
        let Problem { levels, p, ap, .. } = &mut *prob;
        compute_spmv(ctx, core, ips, &levels[0].a, p, ap);
    }
    compute_waxpby(ctx, core, ips, 1.0, &prob.b, -1.0, &prob.ap, &mut prob.r);
    let mut normr = compute_dot(ctx, core, ips, &prob.r, &prob.r).sqrt();
    residuals.push(normr);

    let mut rtz = 0.0f64;
    for k in 1..=max_iters {
        ctx.enter(core, regions::CG_ITERATION);

        // Preconditioner: z = M⁻¹ r.
        if use_mg {
            let Problem { levels, r, z, .. } = &mut *prob;
            compute_mg(ctx, core, ips, levels, r, z);
        } else {
            let Problem { levels, r, z, .. } = &mut *prob;
            crate::kernels::zero_vector(ctx, core, ips, z);
            compute_symgs(ctx, core, ips, &levels[0].a, r, z);
        }

        if k == 1 {
            compute_waxpby(ctx, core, ips, 1.0, &prob.z, 0.0, &prob.z, &mut prob.p);
            rtz = compute_dot(ctx, core, ips, &prob.r, &prob.z);
        } else {
            let rtz_old = rtz;
            rtz = compute_dot(ctx, core, ips, &prob.r, &prob.z);
            let beta = rtz / rtz_old;
            let p_old = prob.p.clone(); // numeric copy; accesses follow below
            compute_waxpby(ctx, core, ips, 1.0, &prob.z, beta, &p_old, &mut prob.p);
        }

        // Ap = A·p — the figure's label E.
        {
            let Problem { levels, p, ap, .. } = &mut *prob;
            compute_spmv(ctx, core, ips, &levels[0].a, p, ap);
        }
        let pap = compute_dot(ctx, core, ips, &prob.p, &prob.ap);
        let alpha = rtz / pap;

        // x += α p; r −= α Ap.
        let x_old = prob.x.clone();
        compute_waxpby(ctx, core, ips, 1.0, &x_old, alpha, &prob.p, &mut prob.x);
        let r_old = prob.r.clone();
        compute_waxpby(ctx, core, ips, 1.0, &r_old, -alpha, &prob.ap, &mut prob.r);

        normr = compute_dot(ctx, core, ips, &prob.r, &prob.r).sqrt();
        residuals.push(normr);

        ctx.exit(core, regions::CG_ITERATION);
    }

    let max_error = (0..prob.x.len())
        .map(|i| (prob.x.get(i) - 1.0).abs())
        .fold(0.0f64, f64::max);

    CgResult { iterations: max_iters, residuals, max_error }
}
