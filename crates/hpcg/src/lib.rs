//! # mempersp-hpcg — the HPCG 3.0 benchmark, reimplemented and
//! instrumented
//!
//! The paper's evaluation (Section III) analyses HPCG — the
//! additive-Schwarz, symmetric-Gauss–Seidel-preconditioned conjugate
//! gradient benchmark — on one node. This crate reimplements the
//! benchmark's execution phase faithfully enough that every
//! observation of the paper's Fig. 1 re-emerges from the simulated
//! memory-access stream:
//!
//! * **`GenerateProblem`** builds the 27-point stencil operator with
//!   the *reference allocation pattern*: one small allocation per
//!   matrix row for the values and the column indices (a few hundred
//!   bytes each, below any sane tracking threshold) plus a node-per-row
//!   `std::map`-like global-to-local structure — the exact pathology
//!   that leaves most PEBS samples unresolved until the allocations
//!   are manually grouped;
//! * **`ComputeSYMGS`** performs a forward then a backward
//!   Gauss–Seidel sweep (the a1/a2 address ramps of the figure);
//! * **`ComputeSPMV`**, **`ComputeMG`** (V-cycle over coarsened
//!   levels), **`ComputeDotProduct`**, **`ComputeWAXPBY`**,
//!   **`ComputeRestriction`**, **`ComputeProlongation`** complete the
//!   solver;
//! * the CG driver runs real arithmetic — the residual genuinely
//!   decreases, which the tests assert — while every load and store
//!   flows through the [`mempersp_extrae::AppContext`] into the
//!   simulated hierarchy.
//!
//! Region names mirror the HPCG 3.0 source files so the folded
//! source-line panel reads like the paper's.

pub mod cg;
pub mod generate;
pub mod geometry;
pub mod kernels;
pub mod mg;
pub mod structures;
pub mod workload;

pub use cg::CgResult;
pub use generate::{generate_problem, GenerateOptions};
pub use geometry::Geometry;
pub use structures::{MgLevel, Problem, SimVector, SparseMatrix};
pub use workload::{HpcgConfig, HpcgWorkload};

/// Region names used by the instrumentation (matching the HPCG 3.0
/// routine names the paper's figure labels A–E refer to).
pub mod regions {
    pub const EXECUTION: &str = "ExecutionPhase";
    pub const CG_ITERATION: &str = "CG_iteration";
    pub const SYMGS: &str = "ComputeSYMGS_ref";
    pub const SPMV: &str = "ComputeSPMV_ref";
    pub const MG: &str = "ComputeMG_ref";
    pub const DOT: &str = "ComputeDotProduct_ref";
    pub const WAXPBY: &str = "ComputeWAXPBY_ref";
    pub const RESTRICTION: &str = "ComputeRestriction_ref";
    pub const PROLONGATION: &str = "ComputeProlongation_ref";
    pub const GENERATE: &str = "GenerateProblem_ref";
}
