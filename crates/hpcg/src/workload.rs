//! The complete HPCG workload: one simulated MPI rank per core, each
//! generating its own local problem (as HPCG's `nx,ny,nz` are local
//! dimensions) and running the preconditioned CG solve.

use crate::cg::{cg_solve, CgResult};
use crate::generate::{generate_problem, GenerateOptions};
use crate::geometry::Geometry;
use crate::kernels::KernelIps;
use crate::regions;
use mempersp_extrae::{AppContext, Workload};

/// HPCG configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HpcgConfig {
    /// Local grid dimension (`nx = ny = nz`; the paper uses 104).
    pub nx: usize,
    /// CG iterations to run (HPCG runs 50 per set).
    pub max_iters: usize,
    /// Multigrid depth (HPCG uses 4; needs `nx` divisible by 2^(levels-1)
    /// with the coarsest at least 2).
    pub mg_levels: usize,
    /// Apply the authors' allocation grouping during generation.
    pub group_allocations: bool,
    /// Use the MG preconditioner (false = single SYMGS, an ablation).
    pub use_mg: bool,
}

impl HpcgConfig {
    /// A test-sized problem that exercises all code paths in well
    /// under a second.
    pub fn tiny() -> Self {
        Self { nx: 8, max_iters: 3, mg_levels: 3, group_allocations: true, use_mg: true }
    }

    /// The default analysis size used by the figure-regeneration
    /// harness (scaled from the paper's 104 to keep simulation time
    /// reasonable; shape-preserving).
    pub fn analysis() -> Self {
        Self { nx: 32, max_iters: 10, mg_levels: 4, group_allocations: true, use_mg: true }
    }
}

impl Default for HpcgConfig {
    fn default() -> Self {
        Self::analysis()
    }
}

/// The runnable benchmark.
#[derive(Debug, Clone)]
pub struct HpcgWorkload {
    pub config: HpcgConfig,
    /// Per-rank solve results, populated by `run`.
    pub results: Vec<CgResult>,
}

impl HpcgWorkload {
    pub fn new(config: HpcgConfig) -> Self {
        Self { config, results: Vec::new() }
    }
}

impl Workload for HpcgWorkload {
    fn name(&self) -> String {
        format!(
            "HPCG nx=ny=nz={} iters={} mg={} grouping={}",
            self.config.nx, self.config.max_iters, self.config.mg_levels, self.config.group_allocations
        )
    }

    fn run(&mut self, ctx: &mut dyn AppContext) {
        let cores = ctx.core_count();
        let geom = Geometry::cube(self.config.nx);
        let ips = KernelIps::register(ctx);

        // Setup phase: every rank generates its local problem.
        let mut problems = Vec::with_capacity(cores);
        for core in 0..cores {
            let opts = GenerateOptions {
                group_allocations: self.config.group_allocations,
                mg_levels: self.config.mg_levels,
                group_suffix: if core == 0 { String::new() } else { format!("#rank{core}") },
            };
            problems.push(generate_problem(ctx, core, geom, &opts));
        }
        ctx.barrier();

        // Execution phase: the part the paper analyses.
        for core in 0..cores {
            ctx.enter(core, regions::EXECUTION);
        }
        self.results.clear();
        for (core, prob) in problems.iter_mut().enumerate() {
            self.results.push(cg_solve(
                ctx,
                core,
                &ips,
                prob,
                self.config.max_iters,
                self.config.use_mg,
            ));
        }
        for core in 0..cores {
            ctx.exit(core, regions::EXECUTION);
        }
        ctx.barrier();
    }
}
