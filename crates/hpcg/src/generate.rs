//! `GenerateProblem` — builds the 27-point operator with the HPCG 3.0
//! *reference* allocation pattern.
//!
//! The reference code allocates, **per matrix row**, a small array for
//! the values and one for the column indices (lines 107–110 of
//! `GenerateProblem_ref.cpp`: `new double[27]`, `new local_int_t[27]`,
//! `new global_int_t[27]` — a few hundred bytes each), and inserts one
//! node per row into the `std::map` global-to-local structure through
//! its `[]`-operator (line 143). Those allocations sit *below* the
//! tracer's size threshold, so PEBS samples landing in them resolve to
//! no object — the paper's "preliminary analysis" problem. With
//! [`GenerateOptions::group_allocations`] the generator wraps the two
//! allocation families exactly as the authors did, producing the
//! `124_GenerateProblem_ref.cpp` and `205_GenerateProblem_ref.cpp`
//! objects of Fig. 1.

use crate::geometry::Geometry;
use crate::regions;
use crate::structures::{MgLevel, Problem, SimVector, SparseMatrix, MAX_NNZ};
use mempersp_extrae::{AppContext, CodeLocation};

/// Bytes of one simulated `std::map` node (red-black tree node:
/// three pointers + colour + key + value, rounded to the allocator
/// bucket glibc uses — ~80 bytes, which reproduces the paper's 89 MB
/// at `nx = 104`).
pub const MAP_NODE_BYTES: u64 = 80;

/// Problem-generation options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerateOptions {
    /// Wrap the per-row allocations (group 1) and the map nodes
    /// (group 2) into named objects, as the authors' manual
    /// instrumentation does.
    pub group_allocations: bool,
    /// Number of multigrid levels (1 = no coarsening; HPCG uses 4).
    pub mg_levels: usize,
    /// Suffix appended to the two group names (used to tell ranks
    /// apart when several simulated ranks share the trace).
    pub group_suffix: String,
}

impl Default for GenerateOptions {
    fn default() -> Self {
        Self { group_allocations: true, mg_levels: 4, group_suffix: String::new() }
    }
}

/// Names the paper's figure gives the two grouped objects.
pub const GROUP_MATRIX: &str = "124_GenerateProblem_ref.cpp";
pub const GROUP_MAP: &str = "205_GenerateProblem_ref.cpp";

/// Expected bytes of the matrix allocation group for a geometry
/// (27 doubles + 27 4-byte local + 27 8-byte global indices per row).
/// At `nx=ny=nz=104` this evaluates to ≈616 MB — the `617 MB` label of
/// Fig. 1.
pub fn expected_matrix_group_bytes(geom: Geometry) -> u64 {
    geom.nrows() as u64 * (27 * 8 + 27 * 4 + 27 * 8)
}

/// Expected bytes of the map group (one node per row); ≈90 MB at
/// `nx=104` — the `89 MB` label of Fig. 1.
pub fn expected_map_group_bytes(geom: Geometry) -> u64 {
    geom.nrows() as u64 * MAP_NODE_BYTES
}

/// Build one matrix level with the reference allocation pattern.
/// Returns the operator; row values are 26 on the diagonal and −1 off
/// it (so that `A·1` is easy to validate).
fn generate_matrix(
    ctx: &mut dyn AppContext,
    core: usize,
    geom: Geometry,
    opts: &GenerateOptions,
    level: usize,
) -> SparseMatrix {
    let nrows = geom.nrows();
    let mut a = SparseMatrix::with_rows(nrows);

    // Group 1: per-row value/index arrays (lines 107-110).
    let values_site = CodeLocation::new("GenerateProblem_ref.cpp", 108, "GenerateProblem_ref");
    let indl_site = CodeLocation::new("GenerateProblem_ref.cpp", 109, "GenerateProblem_ref");
    let indg_site = CodeLocation::new("GenerateProblem_ref.cpp", 110, "GenerateProblem_ref");
    let grouping = opts.group_allocations && level == 0;
    if grouping {
        ctx.begin_alloc_group(&format!("{GROUP_MATRIX}{}", opts.group_suffix));
    }
    let mut rows_meta: Vec<(u64, u64)> = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let va = ctx.malloc(core, (MAX_NNZ * 8) as u64, &values_site);
        let ca = ctx.malloc(core, (MAX_NNZ * 4) as u64, &indl_site);
        // Global indices are allocated by the reference code but only
        // used during setup; we allocate them for footprint fidelity.
        let _ga = ctx.malloc(core, (MAX_NNZ * 8) as u64, &indg_site);
        rows_meta.push((va, ca));
    }
    if grouping {
        ctx.end_alloc_group();
    }

    // Group 2: the std::map global-to-local structure (line 143).
    let map_site = CodeLocation::new("GenerateProblem_ref.cpp", 143, "GenerateProblem_ref");
    if grouping {
        ctx.begin_alloc_group(&format!("{GROUP_MAP}{}", opts.group_suffix));
    }
    for _ in 0..nrows {
        let _node = ctx.malloc(core, MAP_NODE_BYTES, &map_site);
    }
    if grouping {
        ctx.end_alloc_group();
    }

    // Fill the stencil (real values; the setup phase's memory traffic
    // is outside the paper's analysed execution phase, so we do not
    // emit per-element simulated accesses here — only the allocations
    // above matter for the address-space layout).
    let mut entries: Vec<(u32, f64)> = Vec::with_capacity(MAX_NNZ);
    for (i, &(va, ca)) in rows_meta.iter().enumerate() {
        entries.clear();
        for j in geom.neighbors(i) {
            let v = if j == i { 26.0 } else { -1.0 };
            entries.push((j as u32, v));
        }
        a.set_row(i, &entries, va, ca);
    }
    a
}

/// Generate the full problem for one rank: the MG hierarchy, the
/// right-hand side `b = A·1` and zeroed work vectors.
pub fn generate_problem(
    ctx: &mut dyn AppContext,
    core: usize,
    geom: Geometry,
    opts: &GenerateOptions,
) -> Problem {
    assert!(opts.mg_levels >= 1, "need at least one level");
    ctx.enter(core, regions::GENERATE);

    // Build the level geometries first (each must be coarsenable).
    let mut geoms = vec![geom];
    for l in 1..opts.mg_levels {
        let prev = geoms[l - 1];
        assert!(
            prev.coarsenable(),
            "geometry {prev:?} cannot support {} MG levels",
            opts.mg_levels
        );
        geoms.push(prev.coarsen());
    }

    let f2c_site = CodeLocation::new("GenerateCoarseProblem.cpp", 59, "GenerateCoarseProblem");
    let axf_site = CodeLocation::new("GenerateCoarseProblem.cpp", 66, "GenerateCoarseProblem");
    let rc_site = CodeLocation::new("GenerateCoarseProblem.cpp", 67, "GenerateCoarseProblem");
    let xc_site = CodeLocation::new("GenerateCoarseProblem.cpp", 68, "GenerateCoarseProblem");

    let mut levels: Vec<MgLevel> = Vec::with_capacity(opts.mg_levels);
    for (l, &g) in geoms.iter().enumerate() {
        let a = generate_matrix(ctx, core, g, opts, l);
        // The injection operator to the *next* level (empty on the
        // coarsest).
        let (f2c, f2c_base) = if l + 1 < geoms.len() {
            let cg = geoms[l + 1];
            let base = ctx.malloc(core, (cg.nrows() * 4) as u64, &f2c_site);
            let mut map = Vec::with_capacity(cg.nrows());
            for ci in 0..cg.nrows() {
                let (cx, cy, cz) = cg.coords(ci);
                map.push(g.index(2 * cx, 2 * cy, 2 * cz) as u32);
            }
            (map, base)
        } else {
            (Vec::new(), 0)
        };
        let axf = SimVector::new(ctx, core, g.nrows(), &axf_site);
        let (rc, xc) = if l + 1 < geoms.len() {
            let cn = geoms[l + 1].nrows();
            (
                Some(SimVector::new(ctx, core, cn, &rc_site)),
                Some(SimVector::new(ctx, core, cn, &xc_site)),
            )
        } else {
            (None, None)
        };
        levels.push(MgLevel { geom: g, a, f2c, f2c_base, axf, rc, xc });
    }

    // CG vectors (allocated by the reference setup in CG_ref.cpp /
    // GenerateProblem; large enough to be tracked individually).
    let nrows = geom.nrows();
    let vec_site = |line: u32| CodeLocation::new("GenerateProblem_ref.cpp", line, "GenerateProblem_ref");
    let mut b = SimVector::new(ctx, core, nrows, &vec_site(156));
    let mut x = SimVector::new(ctx, core, nrows, &vec_site(157));
    let r = SimVector::new(ctx, core, nrows, &CodeLocation::new("CG_ref.cpp", 50, "CG_ref"));
    let z = SimVector::new(ctx, core, nrows, &CodeLocation::new("CG_ref.cpp", 51, "CG_ref"));
    let p = SimVector::new(ctx, core, nrows, &CodeLocation::new("CG_ref.cpp", 52, "CG_ref"));
    let ap = SimVector::new(ctx, core, nrows, &CodeLocation::new("CG_ref.cpp", 53, "CG_ref"));

    // b = A·1, x = 0 (exact solution is the ones vector).
    let ones = vec![1.0; nrows];
    let mut bh = vec![0.0; nrows];
    levels[0].a.spmv_host(&ones, &mut bh);
    for (i, &v) in bh.iter().enumerate() {
        b.set(i, v);
    }
    x.fill(0.0);

    ctx.exit(core, regions::GENERATE);
    Problem { levels, b, x, r, z, p, ap }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_group_sizes_match_paper_at_104() {
        let g = Geometry::cube(104);
        let matrix_mb = expected_matrix_group_bytes(g) as f64 / 1e6;
        let map_mb = expected_map_group_bytes(g) as f64 / 1e6;
        assert!(
            (matrix_mb - 617.0).abs() < 15.0,
            "matrix group {matrix_mb:.0} MB vs paper 617 MB"
        );
        assert!((map_mb - 89.0).abs() < 5.0, "map group {map_mb:.0} MB vs paper 89 MB");
    }
}
