//! `ComputeMG_ref` — the multigrid V-cycle preconditioner.
//!
//! On each level: one pre-smoothing SYMGS step, the fine residual via
//! SpMV, restriction by injection, the recursive coarse solve, the
//! prolongation, and one post-smoothing SYMGS step; the coarsest level
//! applies a single SYMGS. This is exactly the call sequence behind
//! the paper's per-iteration phase labels: within the top-level MG
//! call the figure shows A (pre-smooth SYMGS), B (SpMV), C (the
//! recursive coarse work), D (post-smooth SYMGS).

use crate::kernels::{
    compute_prolongation, compute_restriction, compute_spmv, compute_symgs, zero_vector, KernelIps,
};
use crate::regions;
use crate::structures::{MgLevel, SimVector};
use mempersp_extrae::AppContext;

/// Apply the V-cycle on `levels` (finest first): solve `A z ≈ r`.
pub fn compute_mg(
    ctx: &mut dyn AppContext,
    core: usize,
    ips: &KernelIps,
    levels: &mut [MgLevel],
    r: &SimVector,
    z: &mut SimVector,
) {
    assert!(!levels.is_empty(), "MG needs at least one level");
    ctx.enter(core, regions::MG);
    zero_vector(ctx, core, ips, z);
    if levels.len() == 1 {
        // Coarsest level: a single smoother application.
        let lvl = &levels[0];
        compute_symgs(ctx, core, ips, &lvl.a, r, z);
    } else {
        // Pre-smooth (figure label A / D on the finest level).
        compute_symgs(ctx, core, ips, &levels[0].a, r, z);
        // Fine residual via SpMV (figure label B).
        {
            let (fine, _) = levels.split_first_mut().expect("non-empty");
            let MgLevel { a, axf, .. } = fine;
            compute_spmv(ctx, core, ips, a, z, axf);
        }
        // Restrict, recurse (figure label C), prolong.
        {
            let (fine, coarser) = levels.split_first_mut().expect("non-empty");
            let mut rc = fine.rc.take().expect("non-coarsest level has rc");
            let mut xc = fine.xc.take().expect("non-coarsest level has xc");
            compute_restriction(ctx, core, ips, &fine.f2c, fine.f2c_base, r, &fine.axf, &mut rc);
            compute_mg(ctx, core, ips, coarser, &rc, &mut xc);
            compute_prolongation(ctx, core, ips, &fine.f2c, fine.f2c_base, &xc, z);
            fine.rc = Some(rc);
            fine.xc = Some(xc);
        }
        // Post-smooth (figure label D).
        compute_symgs(ctx, core, ips, &levels[0].a, r, z);
    }
    ctx.exit(core, regions::MG);
}
