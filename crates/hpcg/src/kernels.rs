//! The instrumented computational kernels.
//!
//! Each kernel mirrors its HPCG 3.0 reference counterpart: it performs
//! the real arithmetic on the host values *and* emits one simulated
//! load/store per array element touched, attributed to an instruction
//! pointer that maps back to the corresponding reference source line.
//!
//! The `set_overlap` hints encode the kernels' dependency structure:
//! the Gauss–Seidel sweeps carry a loop dependency through `x` (each
//! row needs values just produced), so their misses overlap poorly;
//! SpMV rows are independent and stream with high memory-level
//! parallelism. These are the knobs behind the paper's observation
//! that SpMV sustains ≈1.5× the bandwidth of the SYMGS sweeps over the
//! same data structure.

use crate::regions;
use crate::structures::{SimVector, SparseMatrix};
use mempersp_extrae::{AppContext, Ip, MemRequest};

/// Iterations batched per [`AppContext::access_batch`] issue in the
/// streaming vector kernels. The sparse kernels batch per matrix row
/// instead, which keeps their issue order identical to element-wise
/// calls.
const STREAM_CHUNK: usize = 256;

/// Source file of the SYMGS sweeps (for ip-based sweep attribution).
pub const SYMGS_FILE: &str = "ComputeSYMGS_ref.cpp";
/// Inclusive line range of the forward sweep's statements.
pub const SYMGS_FWD_LINES: (u32, u32) = (67, 78);
/// Inclusive line range of the backward sweep's statements.
pub const SYMGS_BWD_LINES: (u32, u32) = (84, 95);

/// Memory-level-parallelism hint for the Gauss–Seidel sweeps.
/// The sweeps carry a loop dependency through `x`, but only ~1 of the
/// ~3 streams (values, indices, gather) is dependent, and Haswell's
/// out-of-order window still overlaps the independent row streams —
/// hence clearly below SpMV but well above serial.
pub const SYMGS_OVERLAP: f64 = 4.0;
/// Memory-level-parallelism hint for SpMV (independent rows).
pub const SPMV_OVERLAP: f64 = 7.0;
/// Memory-level-parallelism hint for the streaming vector kernels.
pub const STREAM_OVERLAP: f64 = 9.0;

/// Pre-registered instruction pointers of every instrumented
/// statement. Line numbers follow the HPCG 3.0 reference sources.
#[derive(Debug, Clone, Copy)]
pub struct KernelIps {
    // ComputeSPMV_ref.cpp
    pub spmv_cols: Ip,
    pub spmv_vals: Ip,
    pub spmv_x: Ip,
    pub spmv_store: Ip,
    pub spmv_loop: Ip,
    // ComputeSYMGS_ref.cpp — forward sweep
    pub symgs_fwd_b: Ip,
    pub symgs_fwd_vals: Ip,
    pub symgs_fwd_cols: Ip,
    pub symgs_fwd_x: Ip,
    pub symgs_fwd_store: Ip,
    pub symgs_fwd_loop: Ip,
    // ComputeSYMGS_ref.cpp — backward sweep
    pub symgs_bwd_b: Ip,
    pub symgs_bwd_vals: Ip,
    pub symgs_bwd_cols: Ip,
    pub symgs_bwd_x: Ip,
    pub symgs_bwd_store: Ip,
    pub symgs_bwd_loop: Ip,
    // ComputeDotProduct_ref.cpp
    pub dot_x: Ip,
    pub dot_y: Ip,
    pub dot_loop: Ip,
    // ComputeWAXPBY_ref.cpp
    pub waxpby_x: Ip,
    pub waxpby_y: Ip,
    pub waxpby_store: Ip,
    pub waxpby_loop: Ip,
    // ComputeRestriction_ref.cpp
    pub restr_f2c: Ip,
    pub restr_rf: Ip,
    pub restr_axf: Ip,
    pub restr_store: Ip,
    pub restr_loop: Ip,
    // ComputeProlongation_ref.cpp
    pub prolong_f2c: Ip,
    pub prolong_xc: Ip,
    pub prolong_xf: Ip,
    pub prolong_store: Ip,
    pub prolong_loop: Ip,
    // ComputeMG_ref.cpp (ZeroVector)
    pub zero_store: Ip,
    pub zero_loop: Ip,
}

impl KernelIps {
    /// Register every instrumented statement with the context.
    pub fn register(ctx: &mut dyn AppContext) -> Self {
        let spmv = "ComputeSPMV_ref";
        let symgs = "ComputeSYMGS_ref";
        Self {
            spmv_cols: ctx.location("ComputeSPMV_ref.cpp", 61, spmv),
            spmv_vals: ctx.location("ComputeSPMV_ref.cpp", 62, spmv),
            spmv_x: ctx.location("ComputeSPMV_ref.cpp", 63, spmv),
            spmv_store: ctx.location("ComputeSPMV_ref.cpp", 65, spmv),
            spmv_loop: ctx.location("ComputeSPMV_ref.cpp", 59, spmv),
            symgs_fwd_b: ctx.location("ComputeSYMGS_ref.cpp", 68, symgs),
            symgs_fwd_vals: ctx.location("ComputeSYMGS_ref.cpp", 70, symgs),
            symgs_fwd_cols: ctx.location("ComputeSYMGS_ref.cpp", 71, symgs),
            symgs_fwd_x: ctx.location("ComputeSYMGS_ref.cpp", 73, symgs),
            symgs_fwd_store: ctx.location("ComputeSYMGS_ref.cpp", 78, symgs),
            symgs_fwd_loop: ctx.location("ComputeSYMGS_ref.cpp", 67, symgs),
            symgs_bwd_b: ctx.location("ComputeSYMGS_ref.cpp", 85, symgs),
            symgs_bwd_vals: ctx.location("ComputeSYMGS_ref.cpp", 87, symgs),
            symgs_bwd_cols: ctx.location("ComputeSYMGS_ref.cpp", 88, symgs),
            symgs_bwd_x: ctx.location("ComputeSYMGS_ref.cpp", 90, symgs),
            symgs_bwd_store: ctx.location("ComputeSYMGS_ref.cpp", 95, symgs),
            symgs_bwd_loop: ctx.location("ComputeSYMGS_ref.cpp", 84, symgs),
            dot_x: ctx.location("ComputeDotProduct_ref.cpp", 47, "ComputeDotProduct_ref"),
            dot_y: ctx.location("ComputeDotProduct_ref.cpp", 48, "ComputeDotProduct_ref"),
            dot_loop: ctx.location("ComputeDotProduct_ref.cpp", 45, "ComputeDotProduct_ref"),
            waxpby_x: ctx.location("ComputeWAXPBY_ref.cpp", 47, "ComputeWAXPBY_ref"),
            waxpby_y: ctx.location("ComputeWAXPBY_ref.cpp", 48, "ComputeWAXPBY_ref"),
            waxpby_store: ctx.location("ComputeWAXPBY_ref.cpp", 49, "ComputeWAXPBY_ref"),
            waxpby_loop: ctx.location("ComputeWAXPBY_ref.cpp", 45, "ComputeWAXPBY_ref"),
            restr_f2c: ctx.location("ComputeRestriction_ref.cpp", 40, "ComputeRestriction_ref"),
            restr_rf: ctx.location("ComputeRestriction_ref.cpp", 41, "ComputeRestriction_ref"),
            restr_axf: ctx.location("ComputeRestriction_ref.cpp", 42, "ComputeRestriction_ref"),
            restr_store: ctx.location("ComputeRestriction_ref.cpp", 43, "ComputeRestriction_ref"),
            restr_loop: ctx.location("ComputeRestriction_ref.cpp", 39, "ComputeRestriction_ref"),
            prolong_f2c: ctx.location("ComputeProlongation_ref.cpp", 39, "ComputeProlongation_ref"),
            prolong_xc: ctx.location("ComputeProlongation_ref.cpp", 40, "ComputeProlongation_ref"),
            prolong_xf: ctx.location("ComputeProlongation_ref.cpp", 41, "ComputeProlongation_ref"),
            prolong_store: ctx.location("ComputeProlongation_ref.cpp", 42, "ComputeProlongation_ref"),
            prolong_loop: ctx.location("ComputeProlongation_ref.cpp", 38, "ComputeProlongation_ref"),
            zero_store: ctx.location("ComputeMG_ref.cpp", 40, "ComputeMG_ref"),
            zero_loop: ctx.location("ComputeMG_ref.cpp", 39, "ComputeMG_ref"),
        }
    }
}

/// y = A·x (`ComputeSPMV_ref`).
pub fn compute_spmv(
    ctx: &mut dyn AppContext,
    core: usize,
    ips: &KernelIps,
    a: &SparseMatrix,
    x: &SimVector,
    y: &mut SimVector,
) {
    assert_eq!(x.len(), a.nrows());
    assert_eq!(y.len(), a.nrows());
    ctx.enter(core, regions::SPMV);
    ctx.set_overlap(core, SPMV_OVERLAP);
    let mut buf: Vec<MemRequest> = Vec::with_capacity(128);
    for i in 0..a.nrows() {
        let nnz = a.row_nnz(i);
        let cols = a.row_cols(i);
        let vals = a.row_values(i);
        let mut sum = 0.0;
        for k in 0..nnz {
            buf.push(MemRequest::load(ips.spmv_cols, a.col_addr(i, k), 4));
            buf.push(MemRequest::load(ips.spmv_vals, a.value_addr(i, k), 8));
            let j = cols[k] as usize;
            buf.push(MemRequest::load(ips.spmv_x, x.addr(j), 8));
            sum += vals[k] * x.get(j);
        }
        y.set(i, sum);
        buf.push(MemRequest::store(ips.spmv_store, y.addr(i), 8));
        ctx.access_batch(core, &buf);
        buf.clear();
        ctx.compute(core, ips.spmv_loop, (2 * nnz + 4) as u64, (nnz + 1) as u64);
    }
    ctx.exit(core, regions::SPMV);
}

/// One row update of a Gauss–Seidel sweep (shared by both directions).
#[allow(clippy::too_many_arguments)]
fn symgs_row(
    ctx: &mut dyn AppContext,
    core: usize,
    buf: &mut Vec<MemRequest>,
    a: &SparseMatrix,
    b: &SimVector,
    x: &mut SimVector,
    i: usize,
    ip_b: Ip,
    ip_vals: Ip,
    ip_cols: Ip,
    ip_x: Ip,
    ip_store: Ip,
    ip_loop: Ip,
) {
    let nnz = a.row_nnz(i);
    let cols = a.row_cols(i);
    let vals = a.row_values(i);
    let diag = a.diag(i);
    buf.push(MemRequest::load(ip_b, b.addr(i), 8));
    let mut sum = b.get(i);
    for k in 0..nnz {
        buf.push(MemRequest::load(ip_cols, a.col_addr(i, k), 4));
        buf.push(MemRequest::load(ip_vals, a.value_addr(i, k), 8));
        let j = cols[k] as usize;
        buf.push(MemRequest::load(ip_x, x.addr(j), 8));
        sum -= vals[k] * x.get(j);
    }
    // Remove the self-contribution added in the loop (reference code's
    // `sum += xv[i] * currentDiagonal`).
    sum += x.get(i) * diag;
    x.set(i, sum / diag);
    buf.push(MemRequest::store(ip_store, x.addr(i), 8));
    ctx.access_batch(core, buf);
    buf.clear();
    ctx.compute(core, ip_loop, (2 * nnz + 8) as u64, (nnz + 1) as u64);
}

/// One symmetric Gauss–Seidel iteration: a forward sweep over the rows
/// followed by a backward sweep (`ComputeSYMGS_ref`). The two sweeps
/// are the paper's a1/a2 (d1/d2) address ramps.
pub fn compute_symgs(
    ctx: &mut dyn AppContext,
    core: usize,
    ips: &KernelIps,
    a: &SparseMatrix,
    b: &SimVector,
    x: &mut SimVector,
) {
    assert_eq!(b.len(), a.nrows());
    assert_eq!(x.len(), a.nrows());
    ctx.enter(core, regions::SYMGS);
    ctx.set_overlap(core, SYMGS_OVERLAP);
    let mut buf: Vec<MemRequest> = Vec::with_capacity(128);
    for i in 0..a.nrows() {
        symgs_row(
            ctx,
            core,
            &mut buf,
            a,
            b,
            x,
            i,
            ips.symgs_fwd_b,
            ips.symgs_fwd_vals,
            ips.symgs_fwd_cols,
            ips.symgs_fwd_x,
            ips.symgs_fwd_store,
            ips.symgs_fwd_loop,
        );
    }
    for i in (0..a.nrows()).rev() {
        symgs_row(
            ctx,
            core,
            &mut buf,
            a,
            b,
            x,
            i,
            ips.symgs_bwd_b,
            ips.symgs_bwd_vals,
            ips.symgs_bwd_cols,
            ips.symgs_bwd_x,
            ips.symgs_bwd_store,
            ips.symgs_bwd_loop,
        );
    }
    ctx.exit(core, regions::SYMGS);
}

/// result = ⟨x, y⟩ (`ComputeDotProduct_ref`).
pub fn compute_dot(
    ctx: &mut dyn AppContext,
    core: usize,
    ips: &KernelIps,
    x: &SimVector,
    y: &SimVector,
) -> f64 {
    assert_eq!(x.len(), y.len());
    ctx.enter(core, regions::DOT);
    ctx.set_overlap(core, STREAM_OVERLAP);
    let same = x.base() == y.base();
    let mut sum = 0.0;
    let mut buf: Vec<MemRequest> = Vec::with_capacity(2 * STREAM_CHUNK);
    let mut pending = 0u64;
    for i in 0..x.len() {
        buf.push(MemRequest::load(ips.dot_x, x.addr(i), 8));
        if !same {
            buf.push(MemRequest::load(ips.dot_y, y.addr(i), 8));
        }
        sum += x.get(i) * y.get(i);
        pending += 1;
        if pending as usize == STREAM_CHUNK {
            ctx.access_batch(core, &buf);
            buf.clear();
            ctx.compute(core, ips.dot_loop, 3 * pending, pending);
            pending = 0;
        }
    }
    if pending > 0 {
        ctx.access_batch(core, &buf);
        buf.clear();
        ctx.compute(core, ips.dot_loop, 3 * pending, pending);
    }
    ctx.exit(core, regions::DOT);
    sum
}

/// w = alpha·x + beta·y (`ComputeWAXPBY_ref`). `w` may alias `x` or
/// `y` numerically; simulated accesses follow the actual addresses.
#[allow(clippy::too_many_arguments)]
pub fn compute_waxpby(
    ctx: &mut dyn AppContext,
    core: usize,
    ips: &KernelIps,
    alpha: f64,
    x: &SimVector,
    beta: f64,
    y: &SimVector,
    w: &mut SimVector,
) {
    assert_eq!(x.len(), y.len());
    assert_eq!(x.len(), w.len());
    ctx.enter(core, regions::WAXPBY);
    ctx.set_overlap(core, STREAM_OVERLAP);
    let mut buf: Vec<MemRequest> = Vec::with_capacity(3 * STREAM_CHUNK);
    let mut pending = 0u64;
    for i in 0..x.len() {
        buf.push(MemRequest::load(ips.waxpby_x, x.addr(i), 8));
        buf.push(MemRequest::load(ips.waxpby_y, y.addr(i), 8));
        w.set(i, alpha * x.get(i) + beta * y.get(i));
        buf.push(MemRequest::store(ips.waxpby_store, w.addr(i), 8));
        pending += 1;
        if pending as usize == STREAM_CHUNK {
            ctx.access_batch(core, &buf);
            buf.clear();
            ctx.compute(core, ips.waxpby_loop, 4 * pending, pending);
            pending = 0;
        }
    }
    if pending > 0 {
        ctx.access_batch(core, &buf);
        buf.clear();
        ctx.compute(core, ips.waxpby_loop, 4 * pending, pending);
    }
    ctx.exit(core, regions::WAXPBY);
}

/// rc = (rf − Axf) restricted by injection (`ComputeRestriction_ref`).
#[allow(clippy::too_many_arguments)]
pub fn compute_restriction(
    ctx: &mut dyn AppContext,
    core: usize,
    ips: &KernelIps,
    f2c: &[u32],
    f2c_base: u64,
    rf: &SimVector,
    axf: &SimVector,
    rc: &mut SimVector,
) {
    assert_eq!(f2c.len(), rc.len());
    ctx.enter(core, regions::RESTRICTION);
    ctx.set_overlap(core, STREAM_OVERLAP);
    let mut buf: Vec<MemRequest> = Vec::with_capacity(4 * STREAM_CHUNK);
    let mut pending = 0u64;
    for (ci, &fi) in f2c.iter().enumerate() {
        buf.push(MemRequest::load(ips.restr_f2c, f2c_base + (ci * 4) as u64, 4));
        let fi = fi as usize;
        buf.push(MemRequest::load(ips.restr_rf, rf.addr(fi), 8));
        buf.push(MemRequest::load(ips.restr_axf, axf.addr(fi), 8));
        rc.set(ci, rf.get(fi) - axf.get(fi));
        buf.push(MemRequest::store(ips.restr_store, rc.addr(ci), 8));
        pending += 1;
        if pending as usize == STREAM_CHUNK {
            ctx.access_batch(core, &buf);
            buf.clear();
            ctx.compute(core, ips.restr_loop, 4 * pending, pending);
            pending = 0;
        }
    }
    if pending > 0 {
        ctx.access_batch(core, &buf);
        buf.clear();
        ctx.compute(core, ips.restr_loop, 4 * pending, pending);
    }
    ctx.exit(core, regions::RESTRICTION);
}

/// xf += xc prolonged by injection (`ComputeProlongation_ref`).
pub fn compute_prolongation(
    ctx: &mut dyn AppContext,
    core: usize,
    ips: &KernelIps,
    f2c: &[u32],
    f2c_base: u64,
    xc: &SimVector,
    xf: &mut SimVector,
) {
    assert_eq!(f2c.len(), xc.len());
    ctx.enter(core, regions::PROLONGATION);
    ctx.set_overlap(core, STREAM_OVERLAP);
    let mut buf: Vec<MemRequest> = Vec::with_capacity(4 * STREAM_CHUNK);
    let mut pending = 0u64;
    for (ci, &fi) in f2c.iter().enumerate() {
        buf.push(MemRequest::load(ips.prolong_f2c, f2c_base + (ci * 4) as u64, 4));
        let fi = fi as usize;
        buf.push(MemRequest::load(ips.prolong_xc, xc.addr(ci), 8));
        buf.push(MemRequest::load(ips.prolong_xf, xf.addr(fi), 8));
        xf.set(fi, xf.get(fi) + xc.get(ci));
        buf.push(MemRequest::store(ips.prolong_store, xf.addr(fi), 8));
        pending += 1;
        if pending as usize == STREAM_CHUNK {
            ctx.access_batch(core, &buf);
            buf.clear();
            ctx.compute(core, ips.prolong_loop, 4 * pending, pending);
            pending = 0;
        }
    }
    if pending > 0 {
        ctx.access_batch(core, &buf);
        buf.clear();
        ctx.compute(core, ips.prolong_loop, 4 * pending, pending);
    }
    ctx.exit(core, regions::PROLONGATION);
}

/// x = 0 with simulated stores (HPCG's `ZeroVector`, called inside
/// `ComputeMG_ref`).
pub fn zero_vector(ctx: &mut dyn AppContext, core: usize, ips: &KernelIps, x: &mut SimVector) {
    ctx.set_overlap(core, STREAM_OVERLAP);
    let mut buf: Vec<MemRequest> = Vec::with_capacity(STREAM_CHUNK);
    let mut pending = 0u64;
    for i in 0..x.len() {
        x.set(i, 0.0);
        buf.push(MemRequest::store(ips.zero_store, x.addr(i), 8));
        pending += 1;
        if pending as usize == STREAM_CHUNK {
            ctx.access_batch(core, &buf);
            buf.clear();
            ctx.compute(core, ips.zero_loop, 2 * pending, pending);
            pending = 0;
        }
    }
    if pending > 0 {
        ctx.access_batch(core, &buf);
        buf.clear();
        ctx.compute(core, ips.zero_loop, 2 * pending, pending);
    }
}
