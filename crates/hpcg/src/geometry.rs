//! Local problem geometry: an `nx × ny × nz` grid with a 27-point
//! stencil, matching HPCG's per-process local domain.

/// The local grid of one simulated rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
}

impl Geometry {
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx >= 2 && ny >= 2 && nz >= 2, "grid must be at least 2³");
        Self { nx, ny, nz }
    }

    /// Cubic geometry (the benchmark's usual `nx=ny=nz`).
    pub fn cube(n: usize) -> Self {
        Self::new(n, n, n)
    }

    /// Number of rows (grid points).
    pub fn nrows(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Linear row index of grid point `(ix, iy, iz)`.
    pub fn index(&self, ix: usize, iy: usize, iz: usize) -> usize {
        (iz * self.ny + iy) * self.nx + ix
    }

    /// Grid coordinates of row `i`.
    pub fn coords(&self, i: usize) -> (usize, usize, usize) {
        let ix = i % self.nx;
        let iy = (i / self.nx) % self.ny;
        let iz = i / (self.nx * self.ny);
        (ix, iy, iz)
    }

    /// The 27-point stencil neighbours of row `i` that fall inside the
    /// domain, in lexicographic order (includes `i` itself).
    pub fn neighbors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let (ix, iy, iz) = self.coords(i);
        let g = *self;
        (-1i64..=1).flat_map(move |dz| {
            (-1i64..=1).flat_map(move |dy| {
                (-1i64..=1).filter_map(move |dx| {
                    let jx = ix as i64 + dx;
                    let jy = iy as i64 + dy;
                    let jz = iz as i64 + dz;
                    if jx >= 0
                        && jx < g.nx as i64
                        && jy >= 0
                        && jy < g.ny as i64
                        && jz >= 0
                        && jz < g.nz as i64
                    {
                        Some(g.index(jx as usize, jy as usize, jz as usize))
                    } else {
                        None
                    }
                })
            })
        })
    }

    /// Can this geometry be coarsened by 2 in every dimension?
    pub fn coarsenable(&self) -> bool {
        self.nx.is_multiple_of(2)
            && self.ny.is_multiple_of(2)
            && self.nz.is_multiple_of(2)
            && self.nx >= 4
            && self.ny >= 4
            && self.nz >= 4
    }

    /// The coarse geometry (each dimension halved).
    pub fn coarsen(&self) -> Geometry {
        assert!(self.coarsenable(), "geometry {self:?} cannot be coarsened");
        Geometry::new(self.nx / 2, self.ny / 2, self.nz / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_coords_round_trip() {
        let g = Geometry::new(4, 6, 8);
        for i in 0..g.nrows() {
            let (x, y, z) = g.coords(i);
            assert_eq!(g.index(x, y, z), i);
        }
    }

    #[test]
    fn interior_point_has_27_neighbors() {
        let g = Geometry::cube(4);
        let i = g.index(1, 2, 2);
        let n: Vec<usize> = g.neighbors(i).collect();
        assert_eq!(n.len(), 27);
        assert!(n.contains(&i));
        // Lexicographic ⇒ sorted.
        assert!(n.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn corner_point_has_8_neighbors() {
        let g = Geometry::cube(4);
        let n: Vec<usize> = g.neighbors(0).collect();
        assert_eq!(n.len(), 8);
    }

    #[test]
    fn face_point_has_18_neighbors() {
        let g = Geometry::cube(4);
        let i = g.index(0, 1, 1);
        assert_eq!(g.neighbors(i).count(), 18);
    }

    #[test]
    fn coarsening() {
        let g = Geometry::cube(8);
        assert!(g.coarsenable());
        assert_eq!(g.coarsen(), Geometry::cube(4));
        assert!(!Geometry::cube(4).coarsen().coarsenable());
        let g6 = Geometry::new(6, 6, 6);
        assert!(g6.coarsenable());
        assert!(!g6.coarsen().coarsenable(), "3³ cannot coarsen further");
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn degenerate_grid_rejected() {
        let _ = Geometry::new(1, 4, 4);
    }
}
