//! Property-based tests of the HPCG solver and problem generator.

use mempersp_extrae::NullContext;
use mempersp_hpcg::cg::cg_solve;
use mempersp_hpcg::generate::{generate_problem, GenerateOptions};
use mempersp_hpcg::kernels::KernelIps;
use mempersp_hpcg::Geometry;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// CG monotonically reduces the residual on the SPD 27-point
    /// operator for any small geometry (and MG never diverges).
    #[test]
    fn residual_decreases_for_any_geometry(
        nx in 2usize..7,
        ny in 2usize..7,
        nz in 2usize..7,
        iters in 1usize..4,
    ) {
        let mut ctx = NullContext::new(1);
        let geom = Geometry::new(nx * 2, ny * 2, nz * 2);
        let opts = GenerateOptions { mg_levels: 2, ..Default::default() };
        let mut prob = generate_problem(&mut ctx, 0, geom, &opts);
        let ips = KernelIps::register(&mut ctx);
        let result = cg_solve(&mut ctx, 0, &ips, &mut prob, iters, true);
        prop_assert_eq!(result.residuals.len(), iters + 1);
        for w in result.residuals.windows(2) {
            prop_assert!(w[1] < w[0], "residuals must decrease: {:?}", result.residuals);
        }
        prop_assert!(result.residuals.iter().all(|r| r.is_finite()));
        // Instrumentation balanced.
        let _ = ctx.finish("prop");
    }

    /// The stencil's row structure: every row has 8–27 nonzeros, the
    /// diagonal is 26, off-diagonals are −1, and the matrix is
    /// symmetric.
    #[test]
    fn operator_structure(nx in 2usize..6, ny in 2usize..6, nz in 2usize..6) {
        let mut ctx = NullContext::new(1);
        let geom = Geometry::new(nx, ny, nz);
        let opts = GenerateOptions { mg_levels: 1, ..Default::default() };
        let prob = generate_problem(&mut ctx, 0, geom, &opts);
        let a = &prob.levels[0].a;
        let mut entries = std::collections::HashMap::new();
        for i in 0..a.nrows() {
            let nnz = a.row_nnz(i);
            prop_assert!((8..=27).contains(&nnz), "row {i} has {nnz} nonzeros");
            prop_assert_eq!(a.diag(i), 26.0);
            for (k, (&c, &v)) in a.row_cols(i).iter().zip(a.row_values(i)).enumerate() {
                if c as usize == i {
                    prop_assert_eq!(v, 26.0);
                } else {
                    prop_assert_eq!(v, -1.0);
                }
                let _ = k;
                entries.insert((i, c as usize), v);
            }
        }
        for (&(i, j), &v) in &entries {
            prop_assert_eq!(entries.get(&(j, i)), Some(&v), "A[{}][{}] symmetric", i, j);
        }
        let _ = ctx.finish("prop");
    }

    /// The group ranges never overlap and cover every row allocation.
    #[test]
    fn groups_disjoint_and_ordered(n in 2usize..6) {
        let mut ctx = NullContext::new(1);
        let geom = Geometry::new(2 * n, 2 * n, 2 * n);
        let opts = GenerateOptions { mg_levels: 1, ..Default::default() };
        let _ = generate_problem(&mut ctx, 0, geom, &opts);
        let trace = ctx.finish("prop");
        let groups: Vec<_> = trace
            .objects
            .all()
            .iter()
            .filter(|o| o.kind == mempersp_extrae::ObjectKind::Group)
            .collect();
        prop_assert_eq!(groups.len(), 2);
        let (m, p) = (groups[0], groups[1]);
        prop_assert!(m.end() <= p.base || p.end() <= m.base, "groups disjoint");
    }
}
