//! End-to-end tests of the HPCG reimplementation on the
//! simulation-free `NullContext`: numerics, instrumentation balance
//! and the allocation-pattern properties the paper relies on.

use mempersp_extrae::events::EventPayload;
use mempersp_extrae::{NullContext, ObjectKind, Workload};
use mempersp_hpcg::generate::{
    expected_map_group_bytes, expected_matrix_group_bytes, GROUP_MAP, GROUP_MATRIX,
};
use mempersp_hpcg::{regions, Geometry, HpcgConfig, HpcgWorkload};

fn run(config: HpcgConfig, cores: usize) -> (HpcgWorkload, mempersp_extrae::Trace) {
    let mut ctx = NullContext::new(cores);
    let mut w = HpcgWorkload::new(config);
    w.run(&mut ctx);
    let name = w.name();
    (w, ctx.finish(&name))
}

#[test]
fn cg_converges_on_tiny_problem() {
    let (w, _) = run(HpcgConfig::tiny(), 1);
    let r = &w.results[0];
    assert_eq!(r.iterations, 3);
    assert_eq!(r.residuals.len(), 4);
    assert!(
        r.reduction() < 1e-2,
        "MG-preconditioned CG should reduce the residual fast; got {}",
        r.reduction()
    );
    assert!(r.max_error < 0.1, "x should approach the ones vector; err {}", r.max_error);
    // Residual decreases monotonically on this SPD system.
    for w in r.residuals.windows(2) {
        assert!(w[1] < w[0], "residuals must decrease: {:?}", r.residuals);
    }
}

#[test]
fn more_iterations_converge_further() {
    let (w3, _) = run(HpcgConfig { max_iters: 2, ..HpcgConfig::tiny() }, 1);
    let (w6, _) = run(HpcgConfig { max_iters: 6, ..HpcgConfig::tiny() }, 1);
    assert!(w6.results[0].reduction() < w3.results[0].reduction());
    assert!(w6.results[0].max_error < 1e-3);
}

#[test]
fn mg_beats_plain_symgs_preconditioner() {
    let base = HpcgConfig { nx: 8, max_iters: 4, mg_levels: 3, group_allocations: true, use_mg: true };
    let (with_mg, _) = run(base.clone(), 1);
    let (without, _) = run(HpcgConfig { use_mg: false, ..base }, 1);
    assert!(
        with_mg.results[0].reduction() < without.results[0].reduction(),
        "MG ({}) should beat single-smoother ({})",
        with_mg.results[0].reduction(),
        without.results[0].reduction()
    );
}

#[test]
fn all_ranks_solve_identically() {
    let (w, _) = run(HpcgConfig::tiny(), 3);
    assert_eq!(w.results.len(), 3);
    for r in &w.results[1..] {
        assert_eq!(r.residuals, w.results[0].residuals, "identical local problems");
    }
}

#[test]
fn trace_contains_the_papers_regions() {
    let (_, trace) = run(HpcgConfig::tiny(), 1);
    for name in [
        regions::EXECUTION,
        regions::CG_ITERATION,
        regions::SYMGS,
        regions::SPMV,
        regions::MG,
        regions::DOT,
        regions::WAXPBY,
        regions::RESTRICTION,
        regions::PROLONGATION,
        regions::GENERATE,
    ] {
        assert!(trace.region_id(name).is_some(), "region {name} missing");
    }
}

#[test]
fn region_instance_counts_match_the_algorithm() {
    let cfg = HpcgConfig::tiny(); // 3 iterations, 3 MG levels
    let iters = cfg.max_iters;
    let levels = cfg.mg_levels;
    let (_, trace) = run(cfg, 1);
    let instances = |name: &str| trace.region_instances(trace.region_id(name).unwrap(), 0).len();

    assert_eq!(instances(regions::CG_ITERATION), iters);
    assert_eq!(instances(regions::EXECUTION), 1);
    // MG: one top-level call per iteration (recursive calls are folded
    // into the top-level instance by the matcher).
    assert_eq!(instances(regions::MG), iters);
    // SYMGS per iteration: 2 per non-coarsest level + 1 at coarsest.
    assert_eq!(instances(regions::SYMGS), iters * (2 * (levels - 1) + 1));
    // SPMV: setup 1 + per iteration (1 per non-coarsest level + 1 CG-level).
    assert_eq!(instances(regions::SPMV), 1 + iters * levels);
    // Restriction/prolongation: per iteration, one per non-coarsest level.
    assert_eq!(instances(regions::RESTRICTION), iters * (levels - 1));
    assert_eq!(instances(regions::PROLONGATION), iters * (levels - 1));
}

#[test]
fn grouped_allocations_produce_the_figure_objects() {
    let (_, trace) = run(HpcgConfig::tiny(), 1);
    let geom = Geometry::cube(8);
    let matrix = trace
        .objects
        .all()
        .iter()
        .find(|o| o.name == GROUP_MATRIX)
        .expect("matrix group registered");
    assert_eq!(matrix.kind, ObjectKind::Group);
    assert_eq!(matrix.allocated_bytes, expected_matrix_group_bytes(geom));
    let map = trace
        .objects
        .all()
        .iter()
        .find(|o| o.name == GROUP_MAP)
        .expect("map group registered");
    assert_eq!(map.allocated_bytes, expected_map_group_bytes(geom));
    // The map group sits above the matrix group (allocated later from
    // the same arena) and they do not overlap.
    assert!(map.base >= matrix.base + matrix.size);
}

#[test]
fn ungrouped_run_registers_no_groups() {
    let (_, trace) = run(HpcgConfig { group_allocations: false, ..HpcgConfig::tiny() }, 1);
    assert!(
        !trace.objects.all().iter().any(|o| o.kind == ObjectKind::Group),
        "no groups expected"
    );
    // The per-row allocations are below the tracer threshold, so no
    // dynamic object covers the matrix rows either.
    assert!(trace
        .objects
        .all()
        .iter()
        .all(|o| !o.name.contains("GenerateProblem_ref.cpp:108")));
}

#[test]
fn vectors_are_tracked_dynamic_objects() {
    let (_, trace) = run(HpcgConfig::tiny(), 1);
    // 8³ rows → vectors are 4 KiB ≥ threshold; callsite-named objects
    // must exist for the CG vectors.
    let names: Vec<&str> = trace.objects.all().iter().map(|o| o.name.as_str()).collect();
    assert!(names.iter().any(|n| n.starts_with("CG_ref.cpp:")), "CG vectors tracked: {names:?}");
}

#[test]
fn per_rank_groups_have_distinct_names() {
    let (_, trace) = run(HpcgConfig::tiny(), 2);
    let groups: Vec<&str> = trace
        .objects
        .all()
        .iter()
        .filter(|o| o.kind == ObjectKind::Group)
        .map(|o| o.name.as_str())
        .collect();
    assert!(groups.contains(&GROUP_MATRIX));
    assert!(groups.iter().any(|g| g.contains("#rank1")), "{groups:?}");
}

#[test]
fn enter_exit_balance_across_cores() {
    // `Tracer::finish` panics on unbalanced regions, so reaching here
    // with multiple cores is itself the assertion; double-check event
    // parity too.
    let (_, trace) = run(HpcgConfig::tiny(), 2);
    let mut enters = 0i64;
    for e in &trace.events {
        match e.payload {
            EventPayload::RegionEnter { .. } => enters += 1,
            EventPayload::RegionExit { .. } => enters -= 1,
            _ => {}
        }
    }
    assert_eq!(enters, 0);
}

#[test]
fn host_spmv_agrees_with_instrumented_spmv() {
    // The instrumented kernels compute the same numbers the host-side
    // helpers do: validated indirectly by convergence, but check the
    // initial residual against a hand computation: r0 = b - A·0 = b,
    // so ‖r0‖ = ‖b‖ = ‖A·1‖.
    let (w, _) = run(HpcgConfig::tiny(), 1);
    let geom = Geometry::cube(8);
    // Compute ‖A·1‖ analytically: row sum = 26 - (nnz-1).
    let mut norm2 = 0.0;
    for i in 0..geom.nrows() {
        let nnz = geom.neighbors(i).count();
        let b_i = 26.0 - (nnz as f64 - 1.0);
        norm2 += b_i * b_i;
    }
    let expect = norm2.sqrt();
    let got = w.results[0].residuals[0];
    assert!((got - expect).abs() / expect < 1e-12, "r0 {got} vs analytic {expect}");
}
