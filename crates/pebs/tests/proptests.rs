//! Property-based tests of the PMU/PEBS models.

use mempersp_memsim::{AccessKind, MemLevel};
use mempersp_pebs::{EventKind, MemOp, Multiplexer, PebsEngine, PebsEvent, Pmu, SamplingConfig};
use proptest::prelude::*;

fn op(i: u64, kind: AccessKind, latency: u32) -> MemOp {
    MemOp {
        ip: i,
        addr: i * 8,
        size: 8,
        kind,
        latency,
        source: MemLevel::L2,
        tlb_miss: i.is_multiple_of(7),
    }
}

proptest! {
    /// The capture rate converges to 1/(period+1) matching ops for any
    /// period and randomization (the +1 is the PEBS shadow op).
    #[test]
    fn capture_rate_matches_period(
        period in 1u64..500,
        randomization in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let mut e = PebsEngine::new(SamplingConfig {
            event: PebsEvent::AllMemOps,
            period,
            randomization,
            seed,
        });
        let n = 200_000u64;
        for i in 0..n {
            e.observe(0, &op(i, AccessKind::Load, 10), i);
        }
        let expected = n as f64 / (period + 1) as f64;
        let got = e.captured() as f64;
        prop_assert!(
            (got - expected).abs() / expected < 0.1,
            "period {period}: captured {got}, expected ~{expected}"
        );
        prop_assert_eq!(e.matched(), n);
    }

    /// Captured samples always satisfy the event's predicate.
    #[test]
    fn captures_satisfy_event_filter(
        threshold in 0u32..100,
        ops in prop::collection::vec((any::<bool>(), 0u32..200), 100..2000),
    ) {
        let mut e = PebsEngine::new(SamplingConfig {
            event: PebsEvent::LoadLatency { threshold },
            period: 3,
            randomization: 0.0,
            seed: 1,
        });
        for (i, &(is_store, lat)) in ops.iter().enumerate() {
            let kind = if is_store { AccessKind::Store } else { AccessKind::Load };
            if let Some(s) = e.observe(0, &op(i as u64, kind, lat), i as u64) {
                prop_assert!(!s.is_store);
                prop_assert!(s.latency >= threshold);
            }
        }
    }

    /// Multiplexing conserves samples: with k identical engines over
    /// disjoint slices, total captures roughly equal a single engine's.
    #[test]
    fn multiplexer_slices_are_disjoint(slice in 10u64..10_000) {
        let cfg = |seed| SamplingConfig {
            event: PebsEvent::AllMemOps,
            period: 10,
            randomization: 0.0,
            seed,
        };
        let mut mux = Multiplexer::new(vec![cfg(1), cfg(2)], slice);
        let n = 100_000u64;
        let mut captured = 0;
        for i in 0..n {
            if mux.observe(0, &op(i, AccessKind::Load, 5), i).is_some() {
                captured += 1;
            }
        }
        let st = mux.stats();
        // Each op was seen by exactly one engine.
        let matched: u64 = st.per_event.iter().map(|e| e.1).sum();
        prop_assert_eq!(matched, n);
        let total: u64 = st.per_event.iter().map(|e| e.2).sum();
        prop_assert_eq!(total, captured);
        let expected = n as f64 / 11.0;
        prop_assert!((captured as f64 - expected).abs() / expected < 0.1);
    }

    /// PMU counters are exact accumulators.
    #[test]
    fn pmu_accumulates_exactly(
        adds in prop::collection::vec((0usize..EventKind::ALL.len(), 0u64..1000), 0..200),
    ) {
        let mut pmu = Pmu::new();
        let mut expect = [0u64; EventKind::ALL.len()];
        for &(idx, n) in &adds {
            let kind = EventKind::ALL[idx];
            pmu.add(kind, n);
            expect[kind.index()] += n;
        }
        for kind in EventKind::ALL {
            prop_assert_eq!(pmu.read(kind), expect[kind.index()]);
        }
    }
}
