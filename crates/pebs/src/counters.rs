//! The performance-counter model.
//!
//! A [`Pmu`] is a set of free-running 64-bit counters, one per
//! [`EventKind`]. The simulated core model increments them as it
//! retires instructions; Extrae reads them at instrumentation events
//! and sampling ticks and emits the values into the trace, exactly as
//! the real tool programs `perf_event`/PAPI counters.

use serde::{Deserialize, Serialize};

/// Hardware events the model counts.
///
/// The set mirrors what the paper's Fig. 1 bottom panel plots
/// (branches, L1D/L2/L3 misses, and the instructions + cycles needed
/// for MIPS/IPC) plus the memory events PEBS samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventKind {
    /// Retired instructions (`INST_RETIRED.ANY`).
    Instructions,
    /// Core clock cycles (`CPU_CLK_UNHALTED.THREAD`).
    Cycles,
    /// Retired branch instructions (`BR_INST_RETIRED.ALL_BRANCHES`).
    Branches,
    /// L1D demand misses (`L1D.REPLACEMENT`).
    L1dMiss,
    /// L2 demand misses (`L2_RQSTS.MISS`).
    L2Miss,
    /// L3 (LLC) misses (`LONGEST_LAT_CACHE.MISS`).
    L3Miss,
    /// Retired load uops (`MEM_UOPS_RETIRED.ALL_LOADS`).
    Loads,
    /// Retired store uops (`MEM_UOPS_RETIRED.ALL_STORES`).
    Stores,
    /// DTLB walk completions.
    TlbMiss,
    /// Stall cycles of accesses served by the L2 (model-internal
    /// counter backing the CPI-stack analysis; real tools approximate
    /// these from miss counts × latencies).
    StallL2,
    /// Stall cycles of accesses served by the L3.
    StallL3,
    /// Stall cycles of accesses served by DRAM.
    StallDram,
}

impl EventKind {
    /// All modelled events, in a stable order.
    pub const ALL: [EventKind; 12] = [
        EventKind::Instructions,
        EventKind::Cycles,
        EventKind::Branches,
        EventKind::L1dMiss,
        EventKind::L2Miss,
        EventKind::L3Miss,
        EventKind::Loads,
        EventKind::Stores,
        EventKind::TlbMiss,
        EventKind::StallL2,
        EventKind::StallL3,
        EventKind::StallDram,
    ];

    /// Stable dense index of this event (for array-backed storage).
    pub fn index(self) -> usize {
        match self {
            EventKind::Instructions => 0,
            EventKind::Cycles => 1,
            EventKind::Branches => 2,
            EventKind::L1dMiss => 3,
            EventKind::L2Miss => 4,
            EventKind::L3Miss => 5,
            EventKind::Loads => 6,
            EventKind::Stores => 7,
            EventKind::TlbMiss => 8,
            EventKind::StallL2 => 9,
            EventKind::StallL3 => 10,
            EventKind::StallDram => 11,
        }
    }

    /// Human-readable name matching the paper's figure legend where
    /// applicable.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Instructions => "Instructions",
            EventKind::Cycles => "Cycles",
            EventKind::Branches => "Branches",
            EventKind::L1dMiss => "L1D miss",
            EventKind::L2Miss => "L2 miss",
            EventKind::L3Miss => "L3 miss",
            EventKind::Loads => "Loads",
            EventKind::Stores => "Stores",
            EventKind::TlbMiss => "DTLB miss",
            EventKind::StallL2 => "L2 stall cycles",
            EventKind::StallL3 => "L3 stall cycles",
            EventKind::StallDram => "DRAM stall cycles",
        }
    }
}

/// A point-in-time copy of all counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    values: [u64; EventKind::ALL.len()],
}

impl CounterSnapshot {
    /// Value of one event.
    pub fn get(&self, e: EventKind) -> u64 {
        self.values[e.index()]
    }

    /// Build a snapshot from raw values in [`EventKind::ALL`] order
    /// (used by trace parsers).
    pub fn from_values(values: [u64; EventKind::ALL.len()]) -> Self {
        Self { values }
    }

    /// The raw values in [`EventKind::ALL`] order.
    pub fn values(&self) -> &[u64; EventKind::ALL.len()] {
        &self.values
    }

    /// Component-wise `self - earlier`; panics on counter regression
    /// (counters are monotone by construction).
    pub fn delta(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let mut out = CounterSnapshot::default();
        for e in EventKind::ALL {
            let i = e.index();
            assert!(
                self.values[i] >= earlier.values[i],
                "counter {e:?} went backwards: {} -> {}",
                earlier.values[i],
                self.values[i]
            );
            out.values[i] = self.values[i] - earlier.values[i];
        }
        out
    }
}

/// One core's performance-monitoring unit.
#[derive(Debug, Clone, Default)]
pub struct Pmu {
    snap: CounterSnapshot,
}

impl Pmu {
    pub fn new() -> Self {
        Self::default()
    }

    /// Count `n` occurrences of `e`.
    pub fn add(&mut self, e: EventKind, n: u64) {
        self.snap.values[e.index()] += n;
    }

    /// Current value of one counter.
    pub fn read(&self, e: EventKind) -> u64 {
        self.snap.get(e)
    }

    /// Copy of all counters.
    pub fn snapshot(&self) -> CounterSnapshot {
        self.snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_read() {
        let mut p = Pmu::new();
        p.add(EventKind::Instructions, 100);
        p.add(EventKind::Instructions, 23);
        p.add(EventKind::Branches, 7);
        assert_eq!(p.read(EventKind::Instructions), 123);
        assert_eq!(p.read(EventKind::Branches), 7);
        assert_eq!(p.read(EventKind::Cycles), 0);
    }

    #[test]
    fn snapshot_delta() {
        let mut p = Pmu::new();
        p.add(EventKind::Cycles, 50);
        let a = p.snapshot();
        p.add(EventKind::Cycles, 25);
        p.add(EventKind::L3Miss, 3);
        let d = p.snapshot().delta(&a);
        assert_eq!(d.get(EventKind::Cycles), 25);
        assert_eq!(d.get(EventKind::L3Miss), 3);
        assert_eq!(d.get(EventKind::Instructions), 0);
    }

    #[test]
    #[should_panic(expected = "went backwards")]
    fn regression_detected() {
        let mut p = Pmu::new();
        p.add(EventKind::Cycles, 10);
        let later = p.snapshot();
        let earlier = {
            let mut q = Pmu::new();
            q.add(EventKind::Cycles, 20);
            q.snapshot()
        };
        let _ = later.delta(&earlier);
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; EventKind::ALL.len()];
        for e in EventKind::ALL {
            assert!(!seen[e.index()], "duplicate index for {e:?}");
            seen[e.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = EventKind::ALL.iter().map(|e| e.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), EventKind::ALL.len());
    }
}
