//! # mempersp-pebs — a software model of the PMU + PEBS
//!
//! The paper's monitoring tool relies on two hardware facilities of
//! recent Intel processors, both modelled here:
//!
//! * **performance counters** — free-running event counts
//!   (instructions, cycles, branches, cache misses per level, ...)
//!   read by Extrae at instrumentation points and sampling ticks
//!   ([`Pmu`], [`EventKind`]);
//! * **PEBS (Precise Event-Based Sampling)** — after a configurable
//!   number of occurrences of a *memory* event, the hardware captures
//!   the full architectural context of the next occurrence: the
//!   referenced virtual address, the access latency in cycles, and the
//!   *data source* (the level of the hierarchy that served the data)
//!   ([`PebsEngine`], [`PebsSample`]).
//!
//! Because a core has a limited number of PEBS-capable counters, load
//! and store events cannot always be measured at once; the paper's
//! Extrae extension time-multiplexes them within a single run
//! ([`Multiplexer`]), avoiding two runs whose address spaces would
//! differ under ASLR.
//!
//! ## Fidelity notes
//!
//! * Real PEBS arms on counter overflow and records the state of the
//!   *next* matching instruction (one-instruction "shadow"); the model
//!   reproduces exactly that two-phase behaviour.
//! * Real sampling periods are often randomized to avoid lock-step with
//!   loop bodies; [`SamplingConfig::randomization`] adds a seeded,
//!   bounded jitter to each period.
//! * The load-latency event (`MEM_TRANS_RETIRED.LOAD_LATENCY`) supports
//!   a minimum-latency threshold; [`PebsEvent::LoadLatency`] carries
//!   one.

pub mod counters;
pub mod multiplex;
pub mod sampling;

pub use counters::{CounterSnapshot, EventKind, Pmu};
pub use multiplex::{MultiplexStats, Multiplexer};
pub use sampling::{MemOp, PebsEngine, PebsEvent, PebsSample, SamplingConfig};
