//! The PEBS sampling engine.
//!
//! Hardware behaviour being modelled: a PEBS-capable counter is
//! programmed with a *sampling period* P and a memory event (e.g.
//! `MEM_TRANS_RETIRED.LOAD_LATENCY` with a latency threshold, or
//! `MEM_UOPS_RETIRED.ALL_STORES`). The counter counts matching retired
//! operations; when it overflows (P occurrences), the PEBS assist is
//! *armed* and the **next** matching operation is captured precisely:
//! its instruction pointer, the referenced virtual address, the access
//! latency and the data source. The counter is then re-armed with a new
//! period (optionally randomized).

use crate::counters::EventKind;
use mempersp_memsim::{AccessKind, MemLevel};
use serde::{Deserialize, Serialize};

/// One retired memory operation, as fed by the simulated core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Synthetic instruction pointer (identifies the source line).
    pub ip: u64,
    /// Referenced virtual address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u32,
    pub kind: AccessKind,
    /// Latency in core cycles (from the hierarchy simulator).
    pub latency: u32,
    /// Data source (from the hierarchy simulator).
    pub source: MemLevel,
    /// Whether the access missed the DTLB.
    pub tlb_miss: bool,
}

/// Which PEBS event the counter is programmed with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PebsEvent {
    /// `MEM_TRANS_RETIRED.LOAD_LATENCY`: retired loads with latency
    /// above the threshold (cycles). A threshold of 0 samples all
    /// loads.
    LoadLatency { threshold: u32 },
    /// `MEM_UOPS_RETIRED.ALL_STORES`: all retired stores.
    AllStores,
    /// All retired memory operations (loads + stores); not available on
    /// every part — kept for experiments.
    AllMemOps,
    /// `MEM_UOPS_RETIRED.STLB_MISS_*`: memory operations that missed
    /// the (S)TLB — samples page-locality problems directly.
    TlbMissOps,
}

impl PebsEvent {
    /// Does this op count towards (and qualify for capture by) this
    /// event?
    pub fn matches(&self, op: &MemOp) -> bool {
        match self {
            PebsEvent::LoadLatency { threshold } => {
                op.kind == AccessKind::Load && op.latency >= *threshold
            }
            PebsEvent::AllStores => op.kind == AccessKind::Store,
            PebsEvent::AllMemOps => true,
            PebsEvent::TlbMissOps => op.tlb_miss,
        }
    }

    /// Trace label for reports.
    pub fn label(&self) -> String {
        match self {
            PebsEvent::LoadLatency { threshold } => format!("loads(lat>={threshold})"),
            PebsEvent::AllStores => "stores".to_string(),
            PebsEvent::AllMemOps => "mem-ops".to_string(),
            PebsEvent::TlbMissOps => "tlb-miss-ops".to_string(),
        }
    }

    /// The counter this event is counted on (for PMU cross-checks).
    pub fn counter(&self) -> EventKind {
        match self {
            PebsEvent::LoadLatency { .. } => EventKind::Loads,
            PebsEvent::AllStores => EventKind::Stores,
            PebsEvent::AllMemOps => EventKind::Loads,
            PebsEvent::TlbMissOps => EventKind::TlbMiss,
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingConfig {
    pub event: PebsEvent,
    /// Matching operations between captures.
    pub period: u64,
    /// Half-width of the uniform period jitter, as a fraction of the
    /// period (0.0 disables randomization; 0.1 means ±10 %).
    pub randomization: f64,
    /// Seed for the period-jitter PRNG.
    pub seed: u64,
}

impl SamplingConfig {
    /// A sensible default: sample every 1009 matching ops (prime, to
    /// stay out of phase with loop bodies) with 10 % jitter.
    pub fn with_event(event: PebsEvent) -> Self {
        Self { event, period: 1009, randomization: 0.1, seed: 0xBEB5 }
    }
}

/// A captured PEBS record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PebsSample {
    /// Capture timestamp in core cycles.
    pub timestamp: u64,
    /// Core that retired the operation.
    pub core: usize,
    pub ip: u64,
    pub addr: u64,
    pub size: u32,
    /// `true` for a store, `false` for a load (flattened for serde
    /// friendliness).
    pub is_store: bool,
    pub latency: u32,
    pub source: MemLevel,
    pub tlb_miss: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArmState {
    /// Counting down `remaining` matching ops.
    Counting { remaining: u64 },
    /// Overflow happened; capture the next matching op.
    Armed,
}

/// The per-core sampling engine for one PEBS event.
#[derive(Debug, Clone)]
pub struct PebsEngine {
    cfg: SamplingConfig,
    state: ArmState,
    rng_state: u64,
    /// Matching ops observed (the virtual counter's total).
    matched: u64,
    /// Samples captured.
    captured: u64,
}

impl PebsEngine {
    pub fn new(cfg: SamplingConfig) -> Self {
        assert!(cfg.period >= 1, "sampling period must be >= 1");
        assert!(
            (0.0..1.0).contains(&cfg.randomization),
            "randomization must be in [0, 1)"
        );
        let mut e = Self {
            state: ArmState::Counting { remaining: cfg.period },
            rng_state: cfg.seed | 1,
            cfg,
            matched: 0,
            captured: 0,
        };
        let p = e.next_period();
        e.state = ArmState::Counting { remaining: p };
        e
    }

    /// The event this engine is programmed with.
    pub fn event(&self) -> PebsEvent {
        self.cfg.event
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn next_period(&mut self) -> u64 {
        if self.cfg.randomization == 0.0 {
            return self.cfg.period;
        }
        let half = (self.cfg.period as f64 * self.cfg.randomization).round() as i64;
        if half == 0 {
            return self.cfg.period;
        }
        let span = (2 * half + 1) as u64;
        let off = (self.next_u64() % span) as i64 - half;
        (self.cfg.period as i64 + off).max(1) as u64
    }

    /// Feed one retired memory operation at cycle `now` on `core`.
    /// Returns a capture if the PEBS assist fired on this op.
    pub fn observe(&mut self, core: usize, op: &MemOp, now: u64) -> Option<PebsSample> {
        if !self.cfg.event.matches(op) {
            return None;
        }
        self.matched += 1;
        match self.state {
            ArmState::Counting { remaining } => {
                if remaining <= 1 {
                    // Counter overflow: arm the assist; the *next*
                    // matching op is the one captured (PEBS shadow).
                    self.state = ArmState::Armed;
                } else {
                    self.state = ArmState::Counting { remaining: remaining - 1 };
                }
                None
            }
            ArmState::Armed => {
                let p = self.next_period();
                self.state = ArmState::Counting { remaining: p };
                self.captured += 1;
                Some(PebsSample {
                    timestamp: now,
                    core,
                    ip: op.ip,
                    addr: op.addr,
                    size: op.size,
                    is_store: op.kind == AccessKind::Store,
                    latency: op.latency,
                    source: op.source,
                    tlb_miss: op.tlb_miss,
                })
            }
        }
    }

    /// Matching operations seen so far.
    pub fn matched(&self) -> u64 {
        self.matched
    }

    /// Samples captured so far.
    pub fn captured(&self) -> u64 {
        self.captured
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(addr: u64, latency: u32) -> MemOp {
        MemOp {
            ip: 0x400000,
            addr,
            size: 8,
            kind: AccessKind::Load,
            latency,
            source: MemLevel::L1,
            tlb_miss: false,
        }
    }

    fn store(addr: u64) -> MemOp {
        MemOp { kind: AccessKind::Store, ..load(addr, 1) }
    }

    fn engine(event: PebsEvent, period: u64) -> PebsEngine {
        PebsEngine::new(SamplingConfig { event, period, randomization: 0.0, seed: 1 })
    }

    #[test]
    fn captures_every_period_plus_one() {
        // Period 10: ops 1..=10 count (overflow at 10), op 11 captured.
        let mut e = engine(PebsEvent::AllMemOps, 10);
        let mut captures = Vec::new();
        for i in 0..33u64 {
            if let Some(s) = e.observe(0, &load(i * 8, 4), i) {
                captures.push(s.timestamp);
            }
        }
        assert_eq!(captures, vec![10, 21, 32], "period-10 fires every 11th op (PEBS shadow)");
        assert_eq!(e.captured(), 3);
    }

    #[test]
    fn store_event_ignores_loads() {
        let mut e = engine(PebsEvent::AllStores, 2);
        assert!(e.observe(0, &load(0, 4), 0).is_none());
        assert!(e.observe(0, &load(8, 4), 1).is_none());
        assert_eq!(e.matched(), 0);
        assert!(e.observe(0, &store(16), 2).is_none());
        assert!(e.observe(0, &store(24), 3).is_none());
        let s = e.observe(0, &store(32), 4).expect("third store after overflow");
        assert!(s.is_store);
        assert_eq!(s.addr, 32);
    }

    #[test]
    fn latency_threshold_filters() {
        let mut e = engine(PebsEvent::LoadLatency { threshold: 30 }, 1);
        assert!(e.observe(0, &load(0, 4), 0).is_none(), "fast load does not count");
        assert_eq!(e.matched(), 0);
        assert!(e.observe(0, &load(8, 100), 1).is_none(), "first slow load overflows");
        let s = e.observe(0, &load(16, 50), 2).expect("second slow load captured");
        assert_eq!(s.latency, 50);
    }

    #[test]
    fn sample_carries_op_payload() {
        let mut e = engine(PebsEvent::AllMemOps, 1);
        e.observe(1, &load(0xAAA, 7), 5);
        let op = MemOp {
            ip: 0x1234,
            addr: 0xDEAD_BEEF,
            size: 4,
            kind: AccessKind::Load,
            latency: 212,
            source: MemLevel::Dram,
            tlb_miss: true,
        };
        let s = e.observe(1, &op, 99).unwrap();
        assert_eq!(s.core, 1);
        assert_eq!(s.ip, 0x1234);
        assert_eq!(s.addr, 0xDEAD_BEEF);
        assert_eq!(s.source, MemLevel::Dram);
        assert!(s.tlb_miss);
        assert_eq!(s.timestamp, 99);
    }

    #[test]
    fn randomized_periods_stay_in_bounds_and_are_deterministic() {
        let cfg = SamplingConfig {
            event: PebsEvent::AllMemOps,
            period: 100,
            randomization: 0.1,
            seed: 42,
        };
        let run = || {
            let mut e = PebsEngine::new(cfg);
            let mut gaps = Vec::new();
            let mut last = None;
            for i in 0..100_000u64 {
                if e.observe(0, &load(i, 4), i).is_some() {
                    if let Some(l) = last {
                        gaps.push(i - l);
                    }
                    last = Some(i);
                }
            }
            gaps
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same capture points");
        assert!(!a.is_empty());
        for g in &a {
            // period 100 ±10, +1 for the shadow op.
            assert!((91..=111).contains(g), "gap {g} out of bounds");
        }
        // Jitter actually varies the gaps.
        assert!(a.iter().collect::<std::collections::HashSet<_>>().len() > 1);
    }

    #[test]
    fn mean_rate_matches_period() {
        let mut e = PebsEngine::new(SamplingConfig {
            event: PebsEvent::AllMemOps,
            period: 50,
            randomization: 0.2,
            seed: 7,
        });
        let n = 100_000u64;
        for i in 0..n {
            e.observe(0, &load(i, 4), i);
        }
        let expected = n as f64 / 51.0;
        let got = e.captured() as f64;
        assert!(
            (got - expected).abs() / expected < 0.05,
            "captured {got}, expected ~{expected}"
        );
    }

    #[test]
    fn tlb_miss_event_filters() {
        let mut e = engine(PebsEvent::TlbMissOps, 1);
        let hit = load(0, 4);
        let miss = MemOp { tlb_miss: true, ..load(8, 40) };
        assert!(e.observe(0, &hit, 0).is_none());
        assert_eq!(e.matched(), 0, "TLB hits do not count");
        assert!(e.observe(0, &miss, 1).is_none(), "first miss overflows");
        let s = e.observe(0, &miss, 2).expect("second miss captured");
        assert!(s.tlb_miss);
        assert_eq!(PebsEvent::TlbMissOps.counter(), EventKind::TlbMiss);
        assert_eq!(PebsEvent::TlbMissOps.label(), "tlb-miss-ops");
    }

    #[test]
    #[should_panic(expected = "period must be >= 1")]
    fn zero_period_rejected() {
        let _ = PebsEngine::new(SamplingConfig {
            event: PebsEvent::AllMemOps,
            period: 0,
            randomization: 0.0,
            seed: 1,
        });
    }
}
