//! Time-multiplexing of PEBS events on one core.
//!
//! A core has few PEBS-capable counters, and the load-latency and
//! store events often cannot be programmed simultaneously. The paper's
//! Extrae extension rotates the active event on a fixed time slice so
//! that a *single run* observes both loads and stores — crucial because
//! two separate runs would see different address-space layouts under
//! ASLR and their samples could not be overlaid.
//!
//! [`Multiplexer`] owns one [`PebsEngine`] per configured event and
//! routes each retired memory operation to the engine whose time slice
//! contains the current cycle.

use crate::sampling::{MemOp, PebsEngine, PebsSample, SamplingConfig};
use serde::{Deserialize, Serialize};

/// Per-event occupancy statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiplexStats {
    /// For each configured event: (label, matched ops, captured samples).
    pub per_event: Vec<(String, u64, u64)>,
    /// Slice rotations performed.
    pub rotations: u64,
}

/// Round-robin PEBS event multiplexer.
#[derive(Debug, Clone)]
pub struct Multiplexer {
    engines: Vec<PebsEngine>,
    /// Length of each slice, in cycles.
    slice_cycles: u64,
    rotations: u64,
}

impl Multiplexer {
    /// `slice_cycles` is how long each event stays programmed before
    /// rotating to the next.
    pub fn new(configs: Vec<SamplingConfig>, slice_cycles: u64) -> Self {
        assert!(!configs.is_empty(), "need at least one PEBS event");
        assert!(slice_cycles >= 1, "slice must be at least one cycle");
        Self {
            engines: configs.into_iter().map(PebsEngine::new).collect(),
            slice_cycles,
            rotations: 0,
        }
    }

    /// Index of the engine active at cycle `now`.
    pub fn active_index(&self, now: u64) -> usize {
        ((now / self.slice_cycles) % self.engines.len() as u64) as usize
    }

    /// Feed one retired memory op; only the engine whose slice covers
    /// `now` observes it.
    pub fn observe(&mut self, core: usize, op: &MemOp, now: u64) -> Option<PebsSample> {
        let idx = self.active_index(now);
        // Track rotations for diagnostics (monotonic `now` assumed).
        let abs_slice = now / self.slice_cycles;
        if abs_slice > self.rotations {
            self.rotations = abs_slice;
        }
        self.engines[idx].observe(core, op, now)
    }

    /// Number of configured events.
    pub fn num_events(&self) -> usize {
        self.engines.len()
    }

    /// Occupancy statistics.
    pub fn stats(&self) -> MultiplexStats {
        MultiplexStats {
            per_event: self
                .engines
                .iter()
                .map(|e| (e.event().label(), e.matched(), e.captured()))
                .collect(),
            rotations: self.rotations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::PebsEvent;
    use mempersp_memsim::{AccessKind, MemLevel};

    fn op(kind: AccessKind, addr: u64) -> MemOp {
        MemOp { ip: 0, addr, size: 8, kind, latency: 10, source: MemLevel::L2, tlb_miss: false }
    }

    fn mux(slice: u64) -> Multiplexer {
        Multiplexer::new(
            vec![
                SamplingConfig {
                    event: PebsEvent::LoadLatency { threshold: 0 },
                    period: 1,
                    randomization: 0.0,
                    seed: 1,
                },
                SamplingConfig {
                    event: PebsEvent::AllStores,
                    period: 1,
                    randomization: 0.0,
                    seed: 2,
                },
            ],
            slice,
        )
    }

    #[test]
    fn slices_rotate_between_events() {
        let m = mux(100);
        assert_eq!(m.active_index(0), 0);
        assert_eq!(m.active_index(99), 0);
        assert_eq!(m.active_index(100), 1);
        assert_eq!(m.active_index(199), 1);
        assert_eq!(m.active_index(200), 0);
    }

    #[test]
    fn both_kinds_captured_in_one_run() {
        let mut m = mux(100);
        let mut loads = 0;
        let mut stores = 0;
        for t in 0..10_000u64 {
            let kind = if t % 2 == 0 { AccessKind::Load } else { AccessKind::Store };
            if let Some(s) = m.observe(0, &op(kind, t * 8), t) {
                if s.is_store {
                    stores += 1;
                } else {
                    loads += 1;
                }
            }
        }
        assert!(loads > 0, "loads sampled");
        assert!(stores > 0, "stores sampled");
    }

    #[test]
    fn inactive_event_sees_nothing() {
        let mut m = mux(1000);
        // Only store ops during the load slice: nothing captured, and
        // the store engine's counter must not advance.
        for t in 0..1000u64 {
            assert!(m.observe(0, &op(AccessKind::Store, t), t).is_none());
        }
        let st = m.stats();
        assert_eq!(st.per_event[1].1, 0, "store engine matched nothing while inactive");
    }

    #[test]
    fn stats_report_per_event_labels() {
        let m = mux(10);
        let st = m.stats();
        assert_eq!(st.per_event.len(), 2);
        assert_eq!(st.per_event[0].0, "loads(lat>=0)");
        assert_eq!(st.per_event[1].0, "stores");
    }

    #[test]
    fn single_event_mux_behaves_like_engine() {
        let mut m = Multiplexer::new(
            vec![SamplingConfig {
                event: PebsEvent::AllMemOps,
                period: 5,
                randomization: 0.0,
                seed: 3,
            }],
            1_000_000,
        );
        let mut caps = 0;
        for t in 0..60u64 {
            if m.observe(0, &op(AccessKind::Load, t), t).is_some() {
                caps += 1;
            }
        }
        assert_eq!(caps, 10, "period-5 engine fires every 6th op");
    }

    #[test]
    #[should_panic(expected = "at least one PEBS event")]
    fn empty_config_rejected() {
        let _ = Multiplexer::new(vec![], 100);
    }
}
