//! # mempersp-workloads — instrumented example kernels
//!
//! Beyond HPCG (which has its own crate), these small kernels exercise
//! the monitoring + folding tool-chain on archetypal memory
//! behaviours:
//!
//! * [`StreamTriad`] — the STREAM benchmark's `a = b + s·c`: three
//!   perfectly sequential streams, the bandwidth-bound baseline;
//! * [`Stencil7`] — a 7-point Jacobi sweep over a 3D grid: mixed
//!   spatial locality with three reuse distances;
//! * [`PointerChase`] — a random permutation walk: zero spatial
//!   locality, fully serialized (latency-bound), the anti-STREAM;
//! * [`TiledMatmul`] — blocked dense matrix multiply: high temporal
//!   locality, compute-bound when the tile fits in cache.
//!
//! Each computes real values (checksums are asserted in tests) while
//! issuing its loads/stores through the
//! [`mempersp_extrae::AppContext`].

pub mod chase;
pub mod matmul;
pub mod sharing;
pub mod stencil;
pub mod stream;

pub use chase::PointerChase;
pub use matmul::TiledMatmul;
pub use mempersp_extrae::{AppContext, Workload};
pub use sharing::FalseSharing;
pub use stencil::Stencil7;
pub use stream::StreamTriad;
