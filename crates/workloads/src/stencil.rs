//! A 7-point Jacobi stencil sweep over a 3D grid.

use mempersp_extrae::{AppContext, CodeLocation, MemRequest, Workload};

/// Cells batched per [`AppContext::access_batch`] issue (8 requests
/// per cell).
const CHUNK: usize = 128;

/// Jacobi sweeps `out[i] = (in[i] + Σ neighbours)/7` over an
/// `n × n × n` grid, ping-ponging between two arrays.
#[derive(Debug, Clone)]
pub struct Stencil7 {
    n: usize,
    sweeps: usize,
    /// Centre value after the final sweep (set by `run`).
    pub probe: f64,
}

impl Stencil7 {
    pub fn new(n: usize, sweeps: usize) -> Self {
        assert!(n >= 3 && sweeps >= 1);
        Self { n, sweeps, probe: 0.0 }
    }

    fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.n + y) * self.n + x
    }
}

impl Workload for Stencil7 {
    fn name(&self) -> String {
        format!("7-point stencil n={} sweeps={}", self.n, self.sweeps)
    }

    fn run(&mut self, ctx: &mut dyn AppContext) {
        let n = self.n;
        let cells = n * n * n;
        let site = |line: u32| CodeLocation::new("stencil.c", line, "jacobi7");
        let ip_in = ctx.location("stencil.c", 52, "jacobi7");
        let ip_out = ctx.location("stencil.c", 57, "jacobi7");
        let ip_loop = ctx.location("stencil.c", 50, "jacobi7");

        let base_a = ctx.malloc(0, (cells * 8) as u64, &site(20));
        let base_b = ctx.malloc(0, (cells * 8) as u64, &site(21));
        let mut cur: Vec<f64> = (0..cells).map(|i| (i % 13) as f64).collect();
        let mut nxt = vec![0.0f64; cells];
        let mut cur_base = base_a;
        let mut nxt_base = base_b;

        ctx.set_overlap(0, 5.0);
        let mut buf: Vec<MemRequest> = Vec::with_capacity(8 * CHUNK);
        for _ in 0..self.sweeps {
            ctx.enter(0, "jacobi7");
            let mut pending = 0u64;
            for z in 1..n - 1 {
                for y in 1..n - 1 {
                    for x in 1..n - 1 {
                        let c = self.idx(x, y, z);
                        let neigh = [
                            c,
                            self.idx(x - 1, y, z),
                            self.idx(x + 1, y, z),
                            self.idx(x, y - 1, z),
                            self.idx(x, y + 1, z),
                            self.idx(x, y, z - 1),
                            self.idx(x, y, z + 1),
                        ];
                        let mut sum = 0.0;
                        for &j in &neigh {
                            buf.push(MemRequest::load(ip_in, cur_base + (j * 8) as u64, 8));
                            sum += cur[j];
                        }
                        nxt[c] = sum / 7.0;
                        buf.push(MemRequest::store(ip_out, nxt_base + (c * 8) as u64, 8));
                        pending += 1;
                        if pending as usize == CHUNK {
                            ctx.access_batch(0, &buf);
                            buf.clear();
                            ctx.compute(0, ip_loop, 10 * pending, 3 * pending);
                            pending = 0;
                        }
                    }
                }
            }
            if pending > 0 {
                ctx.access_batch(0, &buf);
                buf.clear();
                ctx.compute(0, ip_loop, 10 * pending, 3 * pending);
            }
            ctx.exit(0, "jacobi7");
            std::mem::swap(&mut cur, &mut nxt);
            std::mem::swap(&mut cur_base, &mut nxt_base);
        }
        self.probe = cur[self.idx(n / 2, n / 2, n / 2)];
        ctx.free(0, base_a);
        ctx.free(0, base_b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_extrae::NullContext;

    #[test]
    fn stencil_smooths_toward_local_mean() {
        let mut ctx = NullContext::new(1);
        let mut w = Stencil7::new(8, 3);
        w.run(&mut ctx);
        // After smoothing the probe lies within the initial value range.
        assert!(w.probe >= 0.0 && w.probe <= 12.0);
        let trace = ctx.finish("stencil");
        assert_eq!(trace.region_instances(trace.region_id("jacobi7").unwrap(), 0).len(), 3);
    }

    #[test]
    fn boundary_cells_untouched() {
        let mut ctx = NullContext::new(1);
        let mut w = Stencil7::new(5, 2);
        w.run(&mut ctx);
        // Interior got averaged with boundary values each sweep; just
        // assert determinism across runs.
        let mut ctx2 = NullContext::new(1);
        let mut w2 = Stencil7::new(5, 2);
        w2.run(&mut ctx2);
        assert_eq!(w.probe, w2.probe);
    }
}
