//! A multi-core false-sharing kernel: every core increments its own
//! counter, but the counters either share one cache line (`padded =
//! false` — the classic mistake) or live on separate lines.
//!
//! With the coherence model of `mempersp-memsim`, the unpadded
//! variant ping-pongs the line between cores; PEBS samples show the
//! inflated store/load costs, which is precisely the kind of insight
//! the paper's memory perspective is for.

use mempersp_extrae::{AppContext, CodeLocation, Workload};

/// Per-core counter increments with or without cache-line padding.
#[derive(Debug, Clone)]
pub struct FalseSharing {
    iters: usize,
    padded: bool,
    /// Final sum of all counters (set by `run`).
    pub total: u64,
}

impl FalseSharing {
    pub fn new(iters: usize, padded: bool) -> Self {
        assert!(iters > 0);
        Self { iters, padded, total: 0 }
    }
}

impl Workload for FalseSharing {
    fn name(&self) -> String {
        format!(
            "false-sharing iters={} ({})",
            self.iters,
            if self.padded { "padded" } else { "shared line" }
        )
    }

    fn run(&mut self, ctx: &mut dyn AppContext) {
        let cores = ctx.core_count();
        let stride = if self.padded { 64 } else { 8 };
        let site = CodeLocation::new("sharing.c", 15, "worker");
        let ip_load = ctx.location("sharing.c", 22, "worker");
        let ip_store = ctx.location("sharing.c", 23, "worker");
        let base = ctx.malloc(0, (cores * 64) as u64, &site);

        let mut counters = vec![0u64; cores];
        for core in 0..cores {
            ctx.enter(core, "worker");
            ctx.set_overlap(core, 1.0); // an increment is a dependency chain
        }
        // Interleave increments across cores, as concurrent threads
        // hammering their counters would.
        for _ in 0..self.iters {
            for (core, counter) in counters.iter_mut().enumerate() {
                let addr = base + (core * stride) as u64;
                ctx.load(core, ip_load, addr, 8);
                *counter += 1;
                ctx.store(core, ip_store, addr, 8);
                ctx.compute(core, ip_load, 2, 1);
            }
        }
        for core in 0..cores {
            ctx.exit(core, "worker");
        }
        ctx.barrier();
        self.total = counters.iter().sum();
        ctx.free(0, base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_extrae::NullContext;

    #[test]
    fn counts_are_exact() {
        let mut ctx = NullContext::new(3);
        let mut w = FalseSharing::new(100, false);
        w.run(&mut ctx);
        assert_eq!(w.total, 300);
        let trace = ctx.finish("fs");
        assert_eq!(trace.region_instances(trace.region_id("worker").unwrap(), 2).len(), 1);
    }

    #[test]
    fn padded_variant_counts_identically() {
        let mut ctx = NullContext::new(2);
        let mut w = FalseSharing::new(50, true);
        w.run(&mut ctx);
        assert_eq!(w.total, 100);
    }
}
