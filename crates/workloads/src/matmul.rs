//! Tiled dense matrix multiplication: temporal-locality-rich,
//! compute-bound when the tile fits in cache.

use mempersp_extrae::{AppContext, CodeLocation, Workload};

/// C = A·B over `n × n` matrices with `tile × tile` blocking.
#[derive(Debug, Clone)]
pub struct TiledMatmul {
    n: usize,
    tile: usize,
    /// Frobenius-norm-ish checksum of C (set by `run`).
    pub checksum: f64,
}

impl TiledMatmul {
    pub fn new(n: usize, tile: usize) -> Self {
        assert!(n >= 1 && tile >= 1);
        Self { n, tile, checksum: 0.0 }
    }
}

impl Workload for TiledMatmul {
    fn name(&self) -> String {
        format!("tiled matmul n={} tile={}", self.n, self.tile)
    }

    fn run(&mut self, ctx: &mut dyn AppContext) {
        let n = self.n;
        let t = self.tile;
        let site = |line: u32| CodeLocation::new("matmul.c", line, "dgemm_tiled");
        let ip_a = ctx.location("matmul.c", 61, "dgemm_tiled");
        let ip_b = ctx.location("matmul.c", 62, "dgemm_tiled");
        let ip_c = ctx.location("matmul.c", 63, "dgemm_tiled");
        let ip_loop = ctx.location("matmul.c", 58, "dgemm_tiled");

        let a_base = ctx.malloc(0, (n * n * 8) as u64, &site(20));
        let b_base = ctx.malloc(0, (n * n * 8) as u64, &site(21));
        let c_base = ctx.malloc(0, (n * n * 8) as u64, &site(22));
        let a: Vec<f64> = (0..n * n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let b: Vec<f64> = (0..n * n).map(|i| ((i % 3) as f64) + 1.0).collect();
        let mut c = vec![0.0f64; n * n];

        ctx.set_overlap(0, 6.0);
        ctx.enter(0, "dgemm_tiled");
        for ii in (0..n).step_by(t) {
            for kk in (0..n).step_by(t) {
                for jj in (0..n).step_by(t) {
                    for i in ii..(ii + t).min(n) {
                        for k in kk..(kk + t).min(n) {
                            ctx.load(0, ip_a, a_base + ((i * n + k) * 8) as u64, 8);
                            let aik = a[i * n + k];
                            for j in jj..(jj + t).min(n) {
                                ctx.load(0, ip_b, b_base + ((k * n + j) * 8) as u64, 8);
                                c[i * n + j] += aik * b[k * n + j];
                                ctx.store(0, ip_c, c_base + ((i * n + j) * 8) as u64, 8);
                                ctx.compute(0, ip_loop, 3, 1);
                            }
                        }
                    }
                }
            }
        }
        ctx.exit(0, "dgemm_tiled");
        self.checksum = c.iter().map(|v| v.abs()).sum();
        ctx.free(0, a_base);
        ctx.free(0, b_base);
        ctx.free(0, c_base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_extrae::NullContext;

    fn reference_checksum(n: usize) -> f64 {
        let a: Vec<f64> = (0..n * n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let b: Vec<f64> = (0..n * n).map(|i| ((i % 3) as f64) + 1.0).collect();
        let mut c = vec![0.0f64; n * n];
        for i in 0..n {
            for k in 0..n {
                for j in 0..n {
                    c[i * n + j] += a[i * n + k] * b[k * n + j];
                }
            }
        }
        c.iter().map(|v| v.abs()).sum()
    }

    #[test]
    fn tiled_equals_naive() {
        for tile in [1, 3, 4, 16] {
            let mut ctx = NullContext::new(1);
            let mut w = TiledMatmul::new(12, tile);
            w.run(&mut ctx);
            assert_eq!(w.checksum, reference_checksum(12), "tile={tile}");
        }
    }

    #[test]
    fn non_divisible_tile_handled() {
        let mut ctx = NullContext::new(1);
        let mut w = TiledMatmul::new(7, 4);
        w.run(&mut ctx);
        assert_eq!(w.checksum, reference_checksum(7));
    }
}
