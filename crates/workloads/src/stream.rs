//! The STREAM triad: `a[i] = b[i] + s · c[i]`.

use mempersp_extrae::{AppContext, CodeLocation, MemRequest, Workload};

/// Elements batched per [`AppContext::access_batch`] issue.
const CHUNK: usize = 256;

/// STREAM triad over three `n`-element vectors, repeated `reps` times.
#[derive(Debug, Clone)]
pub struct StreamTriad {
    n: usize,
    reps: usize,
    scalar: f64,
    /// Sum of `a` after the last repetition (set by `run`).
    pub checksum: f64,
}

impl StreamTriad {
    pub fn new(n: usize, reps: usize) -> Self {
        assert!(n > 0 && reps > 0);
        Self { n, reps, scalar: 3.0, checksum: 0.0 }
    }
}

impl Workload for StreamTriad {
    fn name(&self) -> String {
        format!("STREAM triad n={} reps={}", self.n, self.reps)
    }

    fn run(&mut self, ctx: &mut dyn AppContext) {
        let site = |line: u32| CodeLocation::new("stream.c", line, "triad");
        let ip_b = ctx.location("stream.c", 341, "triad");
        let ip_c = ctx.location("stream.c", 342, "triad");
        let ip_a = ctx.location("stream.c", 343, "triad");
        let ip_loop = ctx.location("stream.c", 340, "triad");

        let n = self.n;
        let a_base = ctx.malloc(0, (n * 8) as u64, &site(120));
        let b_base = ctx.malloc(0, (n * 8) as u64, &site(121));
        let c_base = ctx.malloc(0, (n * 8) as u64, &site(122));

        let mut a = vec![0.0f64; n];
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let c: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();

        ctx.set_overlap(0, 8.0);
        let mut buf: Vec<MemRequest> = Vec::with_capacity(3 * CHUNK);
        for _ in 0..self.reps {
            ctx.enter(0, "triad");
            let mut pending = 0u64;
            for i in 0..n {
                buf.push(MemRequest::load(ip_b, b_base + (i * 8) as u64, 8));
                buf.push(MemRequest::load(ip_c, c_base + (i * 8) as u64, 8));
                a[i] = b[i] + self.scalar * c[i];
                buf.push(MemRequest::store(ip_a, a_base + (i * 8) as u64, 8));
                pending += 1;
                if pending as usize == CHUNK {
                    ctx.access_batch(0, &buf);
                    buf.clear();
                    ctx.compute(0, ip_loop, 4 * pending, pending);
                    pending = 0;
                }
            }
            if pending > 0 {
                ctx.access_batch(0, &buf);
                buf.clear();
                ctx.compute(0, ip_loop, 4 * pending, pending);
            }
            ctx.exit(0, "triad");
        }
        self.checksum = a.iter().sum();
        ctx.free(0, a_base);
        ctx.free(0, b_base);
        ctx.free(0, c_base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_extrae::NullContext;

    #[test]
    fn triad_computes_correctly() {
        let mut ctx = NullContext::new(1);
        let mut w = StreamTriad::new(100, 2);
        w.run(&mut ctx);
        let expect: f64 = (0..100).map(|i| i as f64 + 3.0 * (i % 7) as f64).sum();
        assert_eq!(w.checksum, expect);
        let trace = ctx.finish("triad");
        assert_eq!(trace.region_instances(trace.region_id("triad").unwrap(), 0).len(), 2);
    }

    #[test]
    fn triad_emits_three_streams() {
        let mut ctx = NullContext::new(1);
        StreamTriad::new(64, 1).run(&mut ctx);
        let trace = ctx.finish("triad");
        use mempersp_extrae::events::EventPayload;
        let (mut loads, mut stores) = (0, 0);
        for e in &trace.events {
            match e.payload {
                EventPayload::Alloc { .. } | EventPayload::Free { .. } => {}
                EventPayload::RegionEnter { .. } | EventPayload::RegionExit { .. } => {}
                _ => {}
            }
        }
        // Counters live in the exit snapshot: 2 loads + 1 store per elem.
        let id = trace.region_id("triad").unwrap();
        for e in &trace.events {
            if let EventPayload::RegionExit { region, counters } = &e.payload {
                if *region == id {
                    loads = counters.get(mempersp_pebs::EventKind::Loads);
                    stores = counters.get(mempersp_pebs::EventKind::Stores);
                }
            }
        }
        assert_eq!(loads, 128);
        assert_eq!(stores, 64);
    }
}
