//! Pointer chasing over a random cyclic permutation: the
//! latency-bound anti-pattern (no spatial locality, no overlap).

use mempersp_extrae::{AppContext, CodeLocation, Workload};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Walks a random single-cycle permutation of `n` 8-byte slots for
/// `steps` hops.
#[derive(Debug, Clone)]
pub struct PointerChase {
    n: usize,
    steps: usize,
    seed: u64,
    /// Final position (set by `run`); asserts the cycle was followed.
    pub final_pos: usize,
}

impl PointerChase {
    pub fn new(n: usize, steps: usize, seed: u64) -> Self {
        assert!(n >= 2);
        Self { n, steps, seed, final_pos: 0 }
    }

    /// Build the single-cycle permutation (Sattolo's algorithm).
    fn permutation(&self) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (1..self.n).collect();
        order.shuffle(&mut rng);
        // Cycle 0 -> order[0] -> order[1] -> ... -> 0.
        let mut next = vec![0usize; self.n];
        let mut prev = 0usize;
        for &o in &order {
            next[prev] = o;
            prev = o;
        }
        next[prev] = 0;
        next
    }
}

impl Workload for PointerChase {
    fn name(&self) -> String {
        format!("pointer chase n={} steps={}", self.n, self.steps)
    }

    fn run(&mut self, ctx: &mut dyn AppContext) {
        let site = CodeLocation::new("chase.c", 30, "chase");
        let ip_load = ctx.location("chase.c", 41, "chase");
        let ip_loop = ctx.location("chase.c", 40, "chase");
        let base = ctx.malloc(0, (self.n * 8) as u64, &site);
        let next = self.permutation();

        // Pointer chasing cannot overlap misses at all.
        ctx.set_overlap(0, 1.0);
        ctx.enter(0, "chase");
        let mut pos = 0usize;
        for _ in 0..self.steps {
            ctx.load(0, ip_load, base + (pos * 8) as u64, 8);
            pos = next[pos];
            ctx.compute(0, ip_loop, 2, 1);
        }
        ctx.exit(0, "chase");
        self.final_pos = pos;
        ctx.free(0, base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_extrae::NullContext;

    #[test]
    fn permutation_is_a_single_cycle() {
        let w = PointerChase::new(100, 1, 42);
        let next = w.permutation();
        let mut seen = [false; 100];
        let mut pos = 0;
        for _ in 0..100 {
            assert!(!seen[pos], "revisited {pos} before completing the cycle");
            seen[pos] = true;
            pos = next[pos];
        }
        assert_eq!(pos, 0, "returns to start after exactly n hops");
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn full_cycle_returns_to_origin() {
        let mut ctx = NullContext::new(1);
        let mut w = PointerChase::new(64, 64, 7);
        w.run(&mut ctx);
        assert_eq!(w.final_pos, 0);
    }

    #[test]
    fn partial_walk_is_deterministic() {
        let run = |seed| {
            let mut ctx = NullContext::new(1);
            let mut w = PointerChase::new(128, 77, seed);
            w.run(&mut ctx);
            w.final_pos
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different seed, different permutation (overwhelmingly)");
    }
}
