//! Property-based tests of the example workloads' numerics.

use mempersp_extrae::{NullContext, Workload};
use mempersp_workloads::{PointerChase, StreamTriad, TiledMatmul};
use proptest::prelude::*;

proptest! {
    /// The triad checksum matches the closed form for any size.
    #[test]
    fn stream_checksum_closed_form(n in 1usize..2000, reps in 1usize..4) {
        let mut ctx = NullContext::new(1);
        let mut w = StreamTriad::new(n, reps);
        w.run(&mut ctx);
        let expect: f64 = (0..n).map(|i| i as f64 + 3.0 * (i % 7) as f64).sum();
        prop_assert_eq!(w.checksum, expect);
    }

    /// Tiled matmul equals the naive product for arbitrary n and tile.
    #[test]
    fn matmul_tiling_invariant(n in 1usize..24, tile in 1usize..26) {
        let reference = {
            let a: Vec<f64> = (0..n * n).map(|i| ((i % 5) as f64) - 2.0).collect();
            let b: Vec<f64> = (0..n * n).map(|i| ((i % 3) as f64) + 1.0).collect();
            let mut c = vec![0.0f64; n * n];
            for i in 0..n {
                for k in 0..n {
                    for j in 0..n {
                        c[i * n + j] += a[i * n + k] * b[k * n + j];
                    }
                }
            }
            c.iter().map(|v| v.abs()).sum::<f64>()
        };
        let mut ctx = NullContext::new(1);
        let mut w = TiledMatmul::new(n, tile);
        w.run(&mut ctx);
        prop_assert_eq!(w.checksum, reference);
    }

    /// Walking exactly n steps of the n-element cyclic permutation
    /// returns to the origin; walking fewer does not.
    #[test]
    fn chase_cycle_property(n in 2usize..512, seed in any::<u64>()) {
        let mut ctx = NullContext::new(1);
        let mut w = PointerChase::new(n, n, seed);
        w.run(&mut ctx);
        prop_assert_eq!(w.final_pos, 0, "full cycle returns home");

        if n > 2 {
            let mut ctx = NullContext::new(1);
            let mut w = PointerChase::new(n, n - 1, seed);
            w.run(&mut ctx);
            prop_assert_ne!(w.final_pos, 0, "partial walk cannot be home (single cycle)");
        }
    }

    /// Every workload leaves the tracer balanced (finish() would panic
    /// otherwise) and emits at least one event.
    #[test]
    fn workloads_are_balanced(n in 8usize..64, seed in any::<u64>()) {
        let workloads: Vec<Box<dyn Workload>> = vec![
            Box::new(StreamTriad::new(n, 2)),
            Box::new(PointerChase::new(n.max(2), n, seed)),
            Box::new(TiledMatmul::new(n.min(16), 4)),
        ];
        for mut w in workloads {
            let mut ctx = NullContext::new(1);
            w.run(&mut ctx);
            let trace = ctx.finish(&w.name());
            prop_assert!(trace.num_events() > 0);
        }
    }
}
