//! The simulated machine: cores + hierarchy + PMU + PEBS + tracer.
//!
//! Timing model (documented in DESIGN.md):
//!
//! * non-memory instructions retire at `base_cpi` cycles each;
//! * an L1-hit access costs `l1_hit_cost` cycles (store-to-load
//!   forwarding and pipelining hide most of the 4-cycle latency);
//! * a miss costs `latency / overlap`, where `overlap` is the
//!   workload-declared memory-level parallelism of the running kernel
//!   (dependent Gauss–Seidel sweeps overlap ~2 misses, streaming SpMV
//!   ~6) — the stand-in for an out-of-order window;
//! * the cycle clock is per core; [`AppContext::barrier`] aligns all
//!   clocks to the maximum (idle cycles still advance the cycle
//!   counter, as a busy-wait would).

use mempersp_extrae::{AppContext, CodeLocation, Ip, Trace, Tracer, TracerConfig, Workload};
use mempersp_memsim::{AccessKind, HierarchyConfig, MemLevel, MemorySystem};
use mempersp_pebs::{
    EventKind, MemOp, MultiplexStats, Multiplexer, PebsEvent, Pmu, SamplingConfig,
};

/// Which cores capture PEBS samples.
///
/// The paper's figure shows one process's address space, so the
/// default samples core 0 only; `All` is useful for aggregate studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PebsCoreSelect {
    All,
    Only(usize),
}

impl PebsCoreSelect {
    fn includes(&self, core: usize) -> bool {
        match self {
            PebsCoreSelect::All => true,
            PebsCoreSelect::Only(c) => *c == core,
        }
    }
}

/// Full machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    pub cores: usize,
    pub hierarchy: HierarchyConfig,
    pub tracer: TracerConfig,
    /// Cycles per non-memory instruction.
    pub base_cpi: f64,
    /// Effective cycles charged for an L1-hit access.
    pub l1_hit_cost: f64,
    /// Memory-level parallelism assumed before the workload's first
    /// `set_overlap` call.
    pub default_overlap: f64,
    /// Period of the Extrae-style timer sampling, in cycles.
    pub counter_sample_period: u64,
    /// PEBS events to multiplex (empty disables memory sampling).
    pub pebs_events: Vec<SamplingConfig>,
    /// Length of each multiplexing slice, in cycles.
    pub mux_slice_cycles: u64,
    /// Which cores run PEBS.
    pub pebs_cores: PebsCoreSelect,
}

impl MachineConfig {
    /// A small single-core machine for tests and examples: tiny
    /// hierarchy, aggressive sampling so short runs yield samples.
    pub fn small() -> Self {
        Self {
            cores: 1,
            hierarchy: HierarchyConfig::small_test(),
            tracer: TracerConfig { freq_mhz: 2000, ..Default::default() },
            base_cpi: 0.25,
            l1_hit_cost: 0.5,
            default_overlap: 4.0,
            counter_sample_period: 2_000,
            pebs_events: vec![
                SamplingConfig {
                    event: PebsEvent::LoadLatency { threshold: 0 },
                    period: 97,
                    randomization: 0.1,
                    seed: 11,
                },
                SamplingConfig {
                    event: PebsEvent::AllStores,
                    period: 53,
                    randomization: 0.1,
                    seed: 13,
                },
            ],
            mux_slice_cycles: 5_000,
            pebs_cores: PebsCoreSelect::All,
        }
    }

    /// A Haswell-node-like machine with `cores` cores (the paper's
    /// platform), PEBS on core 0, paper-style sampling rates.
    pub fn haswell(cores: usize) -> Self {
        Self {
            cores,
            hierarchy: HierarchyConfig::haswell_like(),
            tracer: TracerConfig { freq_mhz: 2500, ..Default::default() },
            base_cpi: 0.25,
            l1_hit_cost: 0.5,
            default_overlap: 4.0,
            counter_sample_period: 100_000,
            pebs_events: vec![
                SamplingConfig {
                    event: PebsEvent::LoadLatency { threshold: 0 },
                    period: 1009,
                    randomization: 0.1,
                    seed: 101,
                },
                SamplingConfig {
                    event: PebsEvent::AllStores,
                    period: 499,
                    randomization: 0.1,
                    seed: 103,
                },
            ],
            mux_slice_cycles: 250_000,
            pebs_cores: PebsCoreSelect::Only(0),
        }
    }
}

/// Everything a monitored run produces.
#[derive(Debug)]
pub struct RunReport {
    pub trace: Trace,
    /// Hardware statistics accumulated over the whole run.
    pub stats: mempersp_memsim::SystemStats,
    /// Per-core multiplexer statistics (index = core).
    pub mux_stats: Vec<Option<MultiplexStats>>,
    /// Final cycle of the slowest core.
    pub wall_cycles: u64,
}

impl RunReport {
    /// Wall-clock seconds at the nominal frequency.
    pub fn wall_seconds(&self) -> f64 {
        self.wall_cycles as f64 / (self.trace.meta.freq_mhz as f64 * 1e6)
    }
}

struct CoreState {
    pmu: Pmu,
    /// Clock with sub-cycle remainder.
    clock_f: f64,
    overlap: f64,
    next_sample_at: u64,
    mux: Option<Multiplexer>,
    last_mux_index: usize,
}

impl CoreState {
    fn clock(&self) -> u64 {
        self.clock_f as u64
    }
}

/// The simulated machine.
///
/// ```
/// use mempersp_core::{Machine, MachineConfig};
/// use mempersp_extrae::{AppContext, CodeLocation, Workload};
///
/// struct Touch;
/// impl Workload for Touch {
///     fn name(&self) -> String { "touch".into() }
///     fn run(&mut self, ctx: &mut dyn AppContext) {
///         let ip = ctx.location("touch.rs", 1, "touch");
///         let base = ctx.malloc(0, 4096, &CodeLocation::new("touch.rs", 2, "t"));
///         ctx.enter(0, "touch");
///         for i in 0..512u64 {
///             ctx.load(0, ip, base + i * 8, 8);
///         }
///         ctx.exit(0, "touch");
///     }
/// }
///
/// let mut machine = Machine::new(MachineConfig::small());
/// let report = machine.run(&mut Touch);
/// assert_eq!(report.stats.total_cores().loads, 512);
/// assert!(report.trace.region_id("touch").is_some());
/// ```
pub struct Machine {
    cfg: MachineConfig,
    mem: MemorySystem,
    tracer: Tracer,
    cores: Vec<CoreState>,
    static_next: u64,
}

impl Machine {
    pub fn new(cfg: MachineConfig) -> Self {
        assert!(cfg.cores >= 1);
        assert!(cfg.base_cpi > 0.0 && cfg.l1_hit_cost >= 0.0);
        assert!(cfg.default_overlap >= 1.0, "overlap < 1 would amplify latencies");
        let mem = MemorySystem::new(cfg.hierarchy.clone(), cfg.cores);
        let tracer = Tracer::new(cfg.tracer, cfg.cores);
        let cores = (0..cfg.cores)
            .map(|c| CoreState {
                pmu: Pmu::new(),
                clock_f: 0.0,
                overlap: cfg.default_overlap,
                next_sample_at: cfg.counter_sample_period.max(1),
                mux: if cfg.pebs_cores.includes(c) && !cfg.pebs_events.is_empty() {
                    Some(Multiplexer::new(cfg.pebs_events.clone(), cfg.mux_slice_cycles))
                } else {
                    None
                },
                last_mux_index: 0,
            })
            .collect();
        Self { cfg, mem, tracer, cores, static_next: 0x0060_0000 }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Run a workload to completion and produce the report. The
    /// machine resets its tracer afterwards and can be reused; caches,
    /// PMU counts and clocks deliberately persist (a warm node), so
    /// use a fresh machine for independent experiments.
    pub fn run(&mut self, workload: &mut dyn Workload) -> RunReport {
        workload.run(self);
        let name = workload.name();
        let tracer = std::mem::replace(&mut self.tracer, Tracer::new(self.cfg.tracer, self.cfg.cores));
        let trace = tracer.finish(&name);
        RunReport {
            trace,
            stats: self.mem.stats(),
            mux_stats: self.cores.iter().map(|c| c.mux.as_ref().map(|m| m.stats())).collect(),
            wall_cycles: self.cores.iter().map(|c| c.clock()).max().unwrap_or(0),
        }
    }

    /// Advance `core`'s clock by `cycles` and keep its cycle counter
    /// coherent.
    fn advance(&mut self, core: usize, cycles: f64) {
        let st = &mut self.cores[core];
        let before = st.clock();
        st.clock_f += cycles;
        let after = st.clock();
        st.pmu.add(EventKind::Cycles, after - before);
    }

    /// Fire any due timer samples on `core`, attributing them to `ip`.
    fn poll_timer(&mut self, core: usize, ip: Ip) {
        loop {
            let st = &mut self.cores[core];
            let now = st.clock();
            if now < st.next_sample_at {
                break;
            }
            let at = st.next_sample_at;
            let snap = st.pmu.snapshot();
            st.next_sample_at += self.cfg.counter_sample_period.max(1);
            self.tracer.record_counter_sample(core, ip, snap, at);
        }
    }

    fn mem_access(&mut self, core: usize, ip: Ip, addr: u64, size: u32, kind: AccessKind) {
        let now = self.cores[core].clock();
        let res = self.mem.access(core, kind, addr, size, now);

        // PMU accounting.
        {
            let pmu = &mut self.cores[core].pmu;
            pmu.add(EventKind::Instructions, 1);
            pmu.add(
                if kind == AccessKind::Store { EventKind::Stores } else { EventKind::Loads },
                1,
            );
            if res.source > MemLevel::L1 {
                pmu.add(EventKind::L1dMiss, 1);
            }
            if res.source > MemLevel::L2 {
                pmu.add(EventKind::L2Miss, 1);
            }
            if res.source > MemLevel::L3 {
                pmu.add(EventKind::L3Miss, 1);
            }
            if res.tlb_miss {
                pmu.add(EventKind::TlbMiss, 1);
            }
        }

        // Cycle cost, attributed to the serving level for the
        // CPI-stack analysis (the L1-hit cost counts as base pipeline
        // work, not stall).
        let stall = if res.source == MemLevel::L1 && !res.tlb_miss {
            self.cfg.l1_hit_cost
        } else {
            (res.latency as f64 / self.cores[core].overlap).max(self.cfg.l1_hit_cost)
        };
        let stall_cycles = (stall - self.cfg.l1_hit_cost).max(0.0).round() as u64;
        if stall_cycles > 0 {
            let kind = match res.source {
                MemLevel::L1 | MemLevel::L2 => EventKind::StallL2,
                MemLevel::L3 => EventKind::StallL3,
                MemLevel::Dram => EventKind::StallDram,
            };
            self.cores[core].pmu.add(kind, stall_cycles);
        }
        self.advance(core, stall);

        // PEBS.
        if self.cores[core].mux.is_some() {
            let op = MemOp {
                ip: ip.0,
                addr,
                size,
                kind,
                latency: res.latency,
                source: res.source,
                tlb_miss: res.tlb_miss,
            };
            let now = self.cores[core].clock();
            let st = &mut self.cores[core];
            let mux = st.mux.as_mut().expect("checked above");
            let idx = mux.active_index(now);
            let rotated = idx != st.last_mux_index;
            st.last_mux_index = idx;
            let sample = mux.observe(core, &op, now);
            let label = rotated.then(|| {
                mux.stats().per_event[idx].0.clone()
            });
            if let Some(label) = label {
                self.tracer.record_mux_switch(core, idx, &label, now);
            }
            if let Some(s) = sample {
                self.tracer.record_pebs(s);
            }
        }

        self.poll_timer(core, ip);
    }
}

impl AppContext for Machine {
    fn core_count(&self) -> usize {
        self.cfg.cores
    }

    fn location(&mut self, file: &str, line: u32, function: &str) -> Ip {
        self.tracer.location(file, line, function)
    }

    fn malloc(&mut self, core: usize, size: u64, callsite: &CodeLocation) -> u64 {
        let now = self.cores[core].clock();
        self.tracer.malloc(size, callsite, now)
    }

    fn free(&mut self, core: usize, addr: u64) {
        let now = self.cores[core].clock();
        self.tracer.free(addr, now);
    }

    fn begin_alloc_group(&mut self, name: &str) {
        self.tracer.begin_alloc_group(name);
    }

    fn end_alloc_group(&mut self) {
        let _ = self.tracer.end_alloc_group();
    }

    fn register_static(&mut self, name: &str, size: u64) -> u64 {
        let base = self.static_next;
        self.static_next += (size + 63) & !63;
        self.tracer.register_static(name, base, size);
        base
    }

    fn enter(&mut self, core: usize, region: &str) {
        let snap = self.cores[core].pmu.snapshot();
        let now = self.cores[core].clock();
        self.tracer.enter(core, region, snap, now);
    }

    fn exit(&mut self, core: usize, region: &str) {
        let snap = self.cores[core].pmu.snapshot();
        let now = self.cores[core].clock();
        self.tracer.exit(core, region, snap, now);
    }

    fn load(&mut self, core: usize, ip: Ip, addr: u64, size: u32) {
        self.mem_access(core, ip, addr, size, AccessKind::Load);
    }

    fn store(&mut self, core: usize, ip: Ip, addr: u64, size: u32) {
        self.mem_access(core, ip, addr, size, AccessKind::Store);
    }

    fn compute(&mut self, core: usize, ip: Ip, instructions: u64, branches: u64) {
        {
            let pmu = &mut self.cores[core].pmu;
            pmu.add(EventKind::Instructions, instructions);
            pmu.add(EventKind::Branches, branches);
        }
        self.advance(core, instructions as f64 * self.cfg.base_cpi);
        self.poll_timer(core, ip);
    }

    fn set_overlap(&mut self, core: usize, overlap: f64) {
        assert!(overlap >= 1.0, "overlap must be >= 1");
        self.cores[core].overlap = overlap;
    }

    fn barrier(&mut self) {
        let max = self
            .cores
            .iter()
            .map(|c| c.clock_f)
            .fold(0.0f64, f64::max);
        for core in 0..self.cores.len() {
            let delta = max - self.cores[core].clock_f;
            if delta > 0.0 {
                self.advance(core, delta);
            }
        }
    }

    fn now(&self, core: usize) -> u64 {
        self.cores[core].clock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_extrae::events::EventPayload;

    /// A micro-workload: streams over one array, then pointer-hops.
    struct Micro {
        n: usize,
    }

    impl Workload for Micro {
        fn name(&self) -> String {
            "micro".into()
        }

        fn run(&mut self, ctx: &mut dyn AppContext) {
            let ip = ctx.location("micro.rs", 1, "micro");
            let base = ctx.malloc(0, (self.n * 8) as u64, &CodeLocation::new("micro.rs", 2, "m"));
            ctx.enter(0, "stream");
            ctx.set_overlap(0, 8.0);
            for i in 0..self.n {
                ctx.load(0, ip, base + (i * 8) as u64, 8);
                ctx.compute(0, ip, 2, 1);
            }
            ctx.exit(0, "stream");
            ctx.enter(0, "stores");
            for i in 0..self.n {
                ctx.store(0, ip, base + (i * 8) as u64, 8);
                ctx.compute(0, ip, 2, 1);
            }
            ctx.exit(0, "stores");
        }
    }

    #[test]
    fn run_produces_trace_and_stats() {
        let mut m = Machine::new(MachineConfig::small());
        let rep = m.run(&mut Micro { n: 4096 });
        assert!(rep.trace.num_events() > 10);
        assert!(rep.wall_cycles > 0);
        assert!(rep.wall_seconds() > 0.0);
        let total = rep.stats.total_cores();
        assert_eq!(total.loads, 4096);
        assert_eq!(total.stores, 4096);
        // Counter coherence: PMU loads equal memsim loads.
        let exit = rep
            .trace
            .events
            .iter()
            .rev()
            .find_map(|e| match &e.payload {
                EventPayload::RegionExit { counters, .. } => Some(*counters),
                _ => None,
            })
            .unwrap();
        assert_eq!(exit.get(EventKind::Loads), 4096);
        assert_eq!(exit.get(EventKind::Stores), 4096);
        assert!(exit.get(EventKind::Instructions) >= 4 * 4096);
    }

    #[test]
    fn pebs_samples_are_captured_and_resolved() {
        let mut m = Machine::new(MachineConfig::small());
        let rep = m.run(&mut Micro { n: 50_000 });
        let pebs: Vec<_> = rep.trace.pebs_events().collect();
        assert!(pebs.len() > 20, "expected plenty of samples, got {}", pebs.len());
        // The array is one big tracked allocation: samples resolve.
        assert!(rep.trace.resolution.resolved > 0);
        assert_eq!(rep.trace.resolution.unresolved, 0);
        // Multiplexing captured both loads and stores in one run.
        let loads = pebs.iter().filter(|(_, s, _)| !s.is_store).count();
        let stores = pebs.iter().filter(|(_, s, _)| s.is_store).count();
        assert!(loads > 0 && stores > 0, "loads {loads} stores {stores}");
    }

    #[test]
    fn timer_samples_appear_at_configured_rate() {
        let mut m = Machine::new(MachineConfig::small());
        let rep = m.run(&mut Micro { n: 20_000 });
        let samples = rep
            .trace
            .events
            .iter()
            .filter(|e| matches!(e.payload, EventPayload::CounterSample { .. }))
            .count();
        let expect = rep.wall_cycles / 2_000;
        assert!(
            (samples as i64 - expect as i64).unsigned_abs() <= expect / 4 + 2,
            "samples {samples}, expected ≈{expect}"
        );
    }

    #[test]
    fn overlap_reduces_runtime() {
        let run_with = |overlap: f64| {
            struct W {
                overlap: f64,
            }
            impl Workload for W {
                fn name(&self) -> String {
                    "w".into()
                }
                fn run(&mut self, ctx: &mut dyn AppContext) {
                    let ip = ctx.location("w.rs", 1, "w");
                    let base =
                        ctx.malloc(0, 1 << 22, &CodeLocation::new("w.rs", 2, "w"));
                    ctx.set_overlap(0, self.overlap);
                    ctx.enter(0, "r");
                    for i in 0..40_000u64 {
                        ctx.load(0, ip, base + i * 64, 8);
                    }
                    ctx.exit(0, "r");
                }
            }
            let mut m = Machine::new(MachineConfig::small());
            m.run(&mut W { overlap }).wall_cycles
        };
        let serial = run_with(1.0);
        let parallel = run_with(8.0);
        assert!(
            parallel * 2 < serial,
            "8-way overlap ({parallel}) should be far faster than serial ({serial})"
        );
    }

    #[test]
    fn barrier_aligns_clocks() {
        struct W;
        impl Workload for W {
            fn name(&self) -> String {
                "w".into()
            }
            fn run(&mut self, ctx: &mut dyn AppContext) {
                let ip = ctx.location("w.rs", 1, "w");
                ctx.compute(0, ip, 10_000, 0);
                ctx.compute(1, ip, 100, 0);
                ctx.barrier();
                assert_eq!(ctx.now(0), ctx.now(1));
            }
        }
        let mut cfg = MachineConfig::small();
        cfg.cores = 2;
        let mut m = Machine::new(cfg);
        let _ = m.run(&mut W);
    }

    #[test]
    fn pebs_core_selection_restricts_sampling() {
        struct W;
        impl Workload for W {
            fn name(&self) -> String {
                "w".into()
            }
            fn run(&mut self, ctx: &mut dyn AppContext) {
                let ip = ctx.location("w.rs", 1, "w");
                let b0 = ctx.malloc(0, 1 << 20, &CodeLocation::new("w.rs", 2, "w"));
                ctx.enter(0, "r");
                ctx.enter(1, "r");
                for i in 0..30_000u64 {
                    ctx.load(0, ip, b0 + (i % 1000) * 8, 8);
                    ctx.load(1, ip, b0 + (i % 1000) * 8, 8);
                }
                ctx.exit(1, "r");
                ctx.exit(0, "r");
            }
        }
        let mut cfg = MachineConfig::small();
        cfg.cores = 2;
        cfg.pebs_cores = PebsCoreSelect::Only(1);
        let mut m = Machine::new(cfg);
        let rep = m.run(&mut W);
        assert!(rep.mux_stats[0].is_none());
        assert!(rep.mux_stats[1].is_some());
        assert!(rep.trace.pebs_events().all(|(_, s, _)| s.core == 1));
        assert!(rep.trace.pebs_events().count() > 0);
    }

    #[test]
    fn deterministic_end_to_end() {
        let run = || {
            let mut m = Machine::new(MachineConfig::small());
            let rep = m.run(&mut Micro { n: 10_000 });
            (rep.wall_cycles, rep.trace.num_events())
        };
        assert_eq!(run(), run());
    }
}
