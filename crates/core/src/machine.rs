//! The simulated machine: cores + hierarchy + PMU + PEBS + tracer.
//!
//! Timing model (documented in DESIGN.md):
//!
//! * non-memory instructions retire at `base_cpi` cycles each;
//! * an L1-hit access costs `l1_hit_cost` cycles (store-to-load
//!   forwarding and pipelining hide most of the 4-cycle latency);
//! * a miss costs `latency / overlap`, where `overlap` is the
//!   workload-declared memory-level parallelism of the running kernel
//!   (dependent Gauss–Seidel sweeps overlap ~2 misses, streaming SpMV
//!   ~6) — the stand-in for an out-of-order window;
//! * the cycle clock is per core; [`AppContext::barrier`] aligns all
//!   clocks to the maximum (idle cycles still advance the cycle
//!   counter, as a busy-wait would).
//!
//! Execution is *epoch-pipelined* (DESIGN.md §7): issued operations
//! are buffered until an observation point (region boundary,
//! malloc/free, barrier, clock read, buffer cap). If no line touched
//! in the epoch is shared between cores, each core's private-path
//! simulation runs independently — on up to
//! [`MachineConfig::threads`] worker threads — and the shared L3/DRAM
//! traffic plus all accounting is replayed afterwards in the original
//! global issue order. Conflicting epochs fall back to exact
//! sequential simulation. Results are bit-identical for any thread
//! count, including 1.

use mempersp_extrae::events::TraceEvent;
use mempersp_extrae::{
    AppContext, CodeLocation, EventSink, Ip, MemRequest, Trace, Tracer, TracerConfig, Workload,
};
use mempersp_memsim::{
    AccessKind, AccessResult, Addr, BatchOp, HierarchyConfig, MemLevel, MemorySystem,
    PrivateResult, UncoreReq,
};
use mempersp_pebs::{
    EventKind, MemOp, MultiplexStats, Multiplexer, PebsEvent, Pmu, SamplingConfig,
};

/// Default for [`MachineConfig::epoch_cap`]: flush an epoch after this
/// many buffered operations — bounds memory and keeps the private
/// phase within cache-friendly batch sizes.
pub const DEFAULT_EPOCH_CAP: usize = 32_768;

/// Which cores capture PEBS samples.
///
/// The paper's figure shows one process's address space, so the
/// default samples core 0 only; `All` is useful for aggregate studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PebsCoreSelect {
    All,
    Only(usize),
}

impl PebsCoreSelect {
    fn includes(&self, core: usize) -> bool {
        match self {
            PebsCoreSelect::All => true,
            PebsCoreSelect::Only(c) => *c == core,
        }
    }
}

/// Full machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    pub cores: usize,
    pub hierarchy: HierarchyConfig,
    pub tracer: TracerConfig,
    /// Cycles per non-memory instruction.
    pub base_cpi: f64,
    /// Effective cycles charged for an L1-hit access.
    pub l1_hit_cost: f64,
    /// Memory-level parallelism assumed before the workload's first
    /// `set_overlap` call.
    pub default_overlap: f64,
    /// Period of the Extrae-style timer sampling, in cycles.
    pub counter_sample_period: u64,
    /// PEBS events to multiplex (empty disables memory sampling).
    pub pebs_events: Vec<SamplingConfig>,
    /// Length of each multiplexing slice, in cycles.
    pub mux_slice_cycles: u64,
    /// Which cores run PEBS.
    pub pebs_cores: PebsCoreSelect,
    /// Worker threads for the private phase of conflict-free epochs
    /// (clamped to the core count). Results are identical for every
    /// value; this is purely a host-side speed knob.
    pub threads: usize,
    /// Flush an epoch once this many operations are buffered. Smaller
    /// caps tighten the streaming pipeline's memory bound (and the
    /// latency until events reach an attached sink) at the cost of
    /// more flushes; results are identical for every value ≥ 1.
    pub epoch_cap: usize,
}

impl MachineConfig {
    /// A small single-core machine for tests and examples: tiny
    /// hierarchy, aggressive sampling so short runs yield samples.
    pub fn small() -> Self {
        Self {
            cores: 1,
            hierarchy: HierarchyConfig::small_test(),
            tracer: TracerConfig { freq_mhz: 2000, ..Default::default() },
            base_cpi: 0.25,
            l1_hit_cost: 0.5,
            default_overlap: 4.0,
            counter_sample_period: 2_000,
            pebs_events: vec![
                SamplingConfig {
                    event: PebsEvent::LoadLatency { threshold: 0 },
                    period: 97,
                    randomization: 0.1,
                    seed: 11,
                },
                SamplingConfig {
                    event: PebsEvent::AllStores,
                    period: 53,
                    randomization: 0.1,
                    seed: 13,
                },
            ],
            mux_slice_cycles: 5_000,
            pebs_cores: PebsCoreSelect::All,
            threads: 1,
            epoch_cap: DEFAULT_EPOCH_CAP,
        }
    }

    /// A Haswell-node-like machine with `cores` cores (the paper's
    /// platform), PEBS on core 0, paper-style sampling rates.
    pub fn haswell(cores: usize) -> Self {
        Self {
            cores,
            hierarchy: HierarchyConfig::haswell_like(),
            tracer: TracerConfig { freq_mhz: 2500, ..Default::default() },
            base_cpi: 0.25,
            l1_hit_cost: 0.5,
            default_overlap: 4.0,
            counter_sample_period: 100_000,
            pebs_events: vec![
                SamplingConfig {
                    event: PebsEvent::LoadLatency { threshold: 0 },
                    period: 1009,
                    randomization: 0.1,
                    seed: 101,
                },
                SamplingConfig {
                    event: PebsEvent::AllStores,
                    period: 499,
                    randomization: 0.1,
                    seed: 103,
                },
            ],
            mux_slice_cycles: 250_000,
            pebs_cores: PebsCoreSelect::Only(0),
            threads: 1,
            epoch_cap: DEFAULT_EPOCH_CAP,
        }
    }
}

/// Everything a monitored run produces.
#[derive(Debug)]
pub struct RunReport {
    /// The trace. After [`Machine::run_streaming`] the event list is
    /// empty — every event went to the sink — but the header side
    /// (meta, source map, object registry, region names) is complete.
    pub trace: Trace,
    /// Hardware statistics accumulated over the whole run.
    pub stats: mempersp_memsim::SystemStats,
    /// Per-core multiplexer statistics (index = core).
    pub mux_stats: Vec<Option<MultiplexStats>>,
    /// Final cycle of the slowest core.
    pub wall_cycles: u64,
    /// Events handed to the streaming sink (0 for a materialized run).
    pub events_streamed: u64,
}

impl RunReport {
    /// Wall-clock seconds at the nominal frequency.
    pub fn wall_seconds(&self) -> f64 {
        self.wall_cycles as f64 / (self.trace.meta.freq_mhz as f64 * 1e6)
    }
}

struct CoreState {
    pmu: Pmu,
    /// Clock with sub-cycle remainder.
    clock_f: f64,
    overlap: f64,
    next_sample_at: u64,
    mux: Option<Multiplexer>,
    last_mux_index: usize,
}

impl CoreState {
    fn clock(&self) -> u64 {
        self.clock_f as u64
    }
}

/// The simulated machine.
///
/// ```
/// use mempersp_core::{Machine, MachineConfig};
/// use mempersp_extrae::{AppContext, CodeLocation, Workload};
///
/// struct Touch;
/// impl Workload for Touch {
///     fn name(&self) -> String { "touch".into() }
///     fn run(&mut self, ctx: &mut dyn AppContext) {
///         let ip = ctx.location("touch.rs", 1, "touch");
///         let base = ctx.malloc(0, 4096, &CodeLocation::new("touch.rs", 2, "t"));
///         ctx.enter(0, "touch");
///         for i in 0..512u64 {
///             ctx.load(0, ip, base + i * 8, 8);
///         }
///         ctx.exit(0, "touch");
///     }
/// }
///
/// let mut machine = Machine::new(MachineConfig::small());
/// let report = machine.run(&mut Touch);
/// assert_eq!(report.stats.total_cores().loads, 512);
/// assert!(report.trace.region_id("touch").is_some());
/// ```
pub struct Machine {
    cfg: MachineConfig,
    mem: MemorySystem,
    tracer: Tracer,
    cores: Vec<CoreState>,
    static_next: u64,
    /// Buffered operations of the open epoch, in global issue order.
    epoch: Vec<EpochOp>,
    /// The same epoch's memory operations, grouped per issuing core
    /// (the unit the private phase consumes).
    epoch_mem: Vec<Vec<BatchOp>>,
    /// Reused phase-1 output buffers, indexed by core.
    ph_results: Vec<Vec<PrivateResult>>,
    ph_reqs: Vec<Vec<UncoreReq>>,
    ph_dirs: Vec<Vec<Addr>>,
    /// Streaming sink for the current [`Machine::run_streaming`] call;
    /// `None` during materialized runs.
    sink: Option<Box<dyn EventSink>>,
    /// First sink I/O failure; once set, draining stops and
    /// `run_streaming` returns the error.
    sink_error: Option<std::io::Error>,
    /// Reused scratch for watermark drains.
    drain_buf: Vec<TraceEvent>,
    events_streamed: u64,
}

/// One buffered operation. Memory ops keep their addr/size in the
/// per-core [`BatchOp`] stream; the global log only needs issue order
/// and attribution.
#[derive(Debug, Clone, Copy)]
enum EpochOp {
    Mem { core: u32, ip: Ip },
    Compute { core: u32, ip: Ip, instructions: u64, branches: u64 },
}

impl Machine {
    pub fn new(cfg: MachineConfig) -> Self {
        assert!(cfg.cores >= 1);
        assert!(cfg.base_cpi > 0.0 && cfg.l1_hit_cost >= 0.0);
        assert!(cfg.default_overlap >= 1.0, "overlap < 1 would amplify latencies");
        assert!(cfg.epoch_cap >= 1, "an epoch holds at least one operation");
        let mem = MemorySystem::new(cfg.hierarchy.clone(), cfg.cores);
        let tracer = Tracer::new(cfg.tracer, cfg.cores);
        let cores = (0..cfg.cores)
            .map(|c| CoreState {
                pmu: Pmu::new(),
                clock_f: 0.0,
                overlap: cfg.default_overlap,
                next_sample_at: cfg.counter_sample_period.max(1),
                mux: if cfg.pebs_cores.includes(c) && !cfg.pebs_events.is_empty() {
                    Some(Multiplexer::new(cfg.pebs_events.clone(), cfg.mux_slice_cycles))
                } else {
                    None
                },
                last_mux_index: 0,
            })
            .collect();
        let n = cfg.cores;
        Self {
            cfg,
            mem,
            tracer,
            cores,
            static_next: 0x0060_0000,
            epoch: Vec::new(),
            epoch_mem: vec![Vec::new(); n],
            ph_results: vec![Vec::new(); n],
            ph_reqs: vec![Vec::new(); n],
            ph_dirs: vec![Vec::new(); n],
            sink: None,
            sink_error: None,
            drain_buf: Vec::new(),
            events_streamed: 0,
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Run a workload to completion and produce the report. The
    /// machine resets its tracer afterwards and can be reused; caches,
    /// PMU counts and clocks deliberately persist (a warm node), so
    /// use a fresh machine for independent experiments.
    pub fn run(&mut self, workload: &mut dyn Workload) -> RunReport {
        workload.run(self);
        self.flush_epoch();
        let name = workload.name();
        let tracer = std::mem::replace(&mut self.tracer, Tracer::new(self.cfg.tracer, self.cfg.cores));
        let trace = tracer.finish(&name);
        RunReport {
            trace,
            stats: self.mem.stats(),
            mux_stats: self.cores.iter().map(|c| c.mux.as_ref().map(|m| m.stats())).collect(),
            wall_cycles: self.cores.iter().map(|c| c.clock()).max().unwrap_or(0),
            events_streamed: 0,
        }
    }

    /// Run a workload while streaming its events into `sink` as the
    /// simulation progresses, never holding more than one epoch's
    /// events in the tracer. At every epoch flush, events timestamped
    /// at or before the minimum per-core clock are final (clocks only
    /// move forward), so they are drained — in exactly the order
    /// [`Tracer::finish`] would emit them — and handed to the sink;
    /// the trailing residue follows after the workload completes. The
    /// produced event stream is byte-for-byte the one a materialized
    /// [`Machine::run`] yields, so a store written this way is
    /// identical to one converted from the materialized trace.
    ///
    /// The returned report's `trace` carries the full header but no
    /// events (they all live in the sink, which has been `finish`ed
    /// with that header). The first sink I/O error aborts the run's
    /// output and is returned; simulation state is still advanced.
    pub fn run_streaming(
        &mut self,
        workload: &mut dyn Workload,
        sink: Box<dyn EventSink>,
    ) -> std::io::Result<RunReport> {
        assert!(self.sink.is_none(), "run_streaming is not reentrant");
        self.sink = Some(sink);
        self.sink_error = None;
        self.events_streamed = 0;
        workload.run(self);
        self.flush_epoch();
        // Everything still buffered is final now.
        self.forward_ready(u64::MAX);
        let name = workload.name();
        let tracer = std::mem::replace(&mut self.tracer, Tracer::new(self.cfg.tracer, self.cfg.cores));
        let trace = tracer.finish(&name);
        let mut sink = self.sink.take().expect("installed above");
        if let Some(err) = self.sink_error.take() {
            return Err(err);
        }
        sink.finish(&trace)?;
        Ok(RunReport {
            trace,
            stats: self.mem.stats(),
            mux_stats: self.cores.iter().map(|c| c.mux.as_ref().map(|m| m.stats())).collect(),
            wall_cycles: self.cores.iter().map(|c| c.clock()).max().unwrap_or(0),
            events_streamed: self.events_streamed,
        })
    }

    /// Drain tracer events that can no longer be preceded — those at
    /// or before the minimum per-core clock — into the sink.
    fn drain_to_sink(&mut self) {
        if self.sink.is_none() || self.sink_error.is_some() {
            return;
        }
        let watermark = self.cores.iter().map(|c| c.clock()).min().unwrap_or(u64::MAX);
        self.forward_ready(watermark);
    }

    fn forward_ready(&mut self, watermark: u64) {
        let Some(sink) = self.sink.as_mut() else { return };
        if self.sink_error.is_some() {
            return;
        }
        self.tracer.drain_ready(watermark, &mut self.drain_buf);
        for e in self.drain_buf.drain(..) {
            if let Err(err) = sink.append_event(&e) {
                self.sink_error = Some(err);
                break;
            }
            self.events_streamed += 1;
        }
        self.drain_buf.clear();
    }

    /// Advance `core`'s clock by `cycles` and keep its cycle counter
    /// coherent.
    fn advance(&mut self, core: usize, cycles: f64) {
        let st = &mut self.cores[core];
        let before = st.clock();
        st.clock_f += cycles;
        let after = st.clock();
        st.pmu.add(EventKind::Cycles, after - before);
    }

    /// Fire any due timer samples on `core`, attributing them to `ip`.
    fn poll_timer(&mut self, core: usize, ip: Ip) {
        loop {
            let st = &mut self.cores[core];
            let now = st.clock();
            if now < st.next_sample_at {
                break;
            }
            let at = st.next_sample_at;
            let snap = st.pmu.snapshot();
            st.next_sample_at += self.cfg.counter_sample_period.max(1);
            self.tracer.record_counter_sample(core, ip, snap, at);
        }
    }

    /// Buffer one memory operation into the open epoch.
    fn push_mem(&mut self, core: usize, ip: Ip, addr: u64, size: u32, kind: AccessKind) {
        self.epoch.push(EpochOp::Mem { core: core as u32, ip });
        self.epoch_mem[core].push(BatchOp { kind, addr, size });
        if self.epoch.len() >= self.cfg.epoch_cap {
            self.flush_epoch();
        }
    }

    /// Retire every buffered operation. Called at observation points
    /// (region boundaries, allocation events, barriers, clock reads)
    /// and at the buffer cap, so that everything the tracer or the
    /// workload can observe is already accounted.
    fn flush_epoch(&mut self) {
        if self.epoch.is_empty() {
            self.drain_to_sink();
            return;
        }
        let epoch = std::mem::take(&mut self.epoch);
        let per_core = std::mem::take(&mut self.epoch_mem);

        if self.mem.epoch_conflict_free(&per_core) {
            self.run_epoch_pipelined(&epoch, &per_core);
        } else {
            // Cross-core sharing inside the epoch: replay exactly, one
            // access at a time, in the original order.
            let mut cursor = vec![0usize; self.cfg.cores];
            for op in &epoch {
                match *op {
                    EpochOp::Mem { core, ip } => {
                        let core = core as usize;
                        let bop = per_core[core][cursor[core]];
                        cursor[core] += 1;
                        let now = self.cores[core].clock();
                        let res = self.mem.access(core, bop.kind, bop.addr, bop.size, now);
                        self.account_access(core, ip, bop.addr, bop.size, bop.kind, res);
                    }
                    EpochOp::Compute { core, ip, instructions, branches } => {
                        self.account_compute(core as usize, ip, instructions, branches);
                    }
                }
            }
        }

        // Return the buffers, keeping their capacity.
        let mut epoch = epoch;
        epoch.clear();
        self.epoch = epoch;
        let mut per_core = per_core;
        for v in &mut per_core {
            v.clear();
        }
        self.epoch_mem = per_core;
        self.drain_to_sink();
    }

    /// The two-phase path for a conflict-free epoch: parallel private
    /// simulation, then a deterministic global replay of the shared
    /// L3/DRAM traffic and all accounting.
    fn run_epoch_pipelined(&mut self, epoch: &[EpochOp], per_core: &[Vec<BatchOp>]) {
        let n = self.cfg.cores;
        let track_dir = n > 1;
        let mut results = std::mem::take(&mut self.ph_results);
        let mut reqs = std::mem::take(&mut self.ph_reqs);
        let mut dirs = std::mem::take(&mut self.ph_dirs);

        // Phase 1: every core's private path, in parallel when asked.
        {
            let hier = &self.cfg.hierarchy;
            let threads = self.cfg.threads.clamp(1, n);
            let paths = self.mem.core_paths_mut();
            let mut work: Vec<_> = paths
                .iter_mut()
                .zip(per_core)
                .zip(results.iter_mut().zip(reqs.iter_mut()).zip(dirs.iter_mut()))
                .map(|((path, ops), ((res, rq), dr))| (path, ops, res, rq, dr))
                .filter(|(_, ops, ..)| !ops.is_empty())
                .collect();
            if threads <= 1 || work.len() <= 1 {
                for (path, ops, res, rq, dr) in &mut work {
                    path.simulate_private(hier, track_dir, ops, res, rq, dr);
                }
            } else {
                let per_chunk = work.len().div_ceil(threads);
                std::thread::scope(|s| {
                    for chunk in work.chunks_mut(per_chunk) {
                        s.spawn(move || {
                            for (path, ops, res, rq, dr) in chunk {
                                path.simulate_private(hier, track_dir, ops, res, rq, dr);
                            }
                        });
                    }
                });
            }
        }

        // Bring the snoop-filter directory up to date (fixed core
        // order — deterministic) before any phase-2 back-invalidation
        // consults it.
        if track_dir {
            for (c, d) in dirs.iter_mut().enumerate() {
                self.mem.sync_directory(c, d);
            }
        }

        // Phase 2: walk the global issue order; apply each op's uncore
        // requests and account it at its core's current clock.
        let mut cursor = vec![0usize; n];
        let mut req_cursor = vec![0usize; n];
        for op in epoch {
            match *op {
                EpochOp::Mem { core, ip } => {
                    let core = core as usize;
                    let i = cursor[core];
                    let bop = per_core[core][i];
                    let pr = results[core][i];
                    let slice = &reqs[core][req_cursor[core]..req_cursor[core] + pr.req_len as usize];
                    let now = self.cores[core].clock();
                    let res = self.mem.complete_access(core, &pr, slice, now);
                    cursor[core] += 1;
                    req_cursor[core] += pr.req_len as usize;
                    self.account_access(core, ip, bop.addr, bop.size, bop.kind, res);
                }
                EpochOp::Compute { core, ip, instructions, branches } => {
                    self.account_compute(core as usize, ip, instructions, branches);
                }
            }
        }

        for v in &mut results {
            v.clear();
        }
        for v in &mut reqs {
            v.clear();
        }
        self.ph_results = results;
        self.ph_reqs = reqs;
        self.ph_dirs = dirs;
    }

    /// PMU/stall/PEBS/timer accounting of one completed access — the
    /// retire half of the old synchronous `mem_access`.
    fn account_access(&mut self, core: usize, ip: Ip, addr: u64, size: u32, kind: AccessKind, res: AccessResult) {
        // PMU accounting.
        {
            let pmu = &mut self.cores[core].pmu;
            pmu.add(EventKind::Instructions, 1);
            pmu.add(
                if kind == AccessKind::Store { EventKind::Stores } else { EventKind::Loads },
                1,
            );
            if res.source > MemLevel::L1 {
                pmu.add(EventKind::L1dMiss, 1);
            }
            if res.source > MemLevel::L2 {
                pmu.add(EventKind::L2Miss, 1);
            }
            if res.source > MemLevel::L3 {
                pmu.add(EventKind::L3Miss, 1);
            }
            if res.tlb_miss {
                pmu.add(EventKind::TlbMiss, 1);
            }
        }

        // Cycle cost, attributed to the serving level for the
        // CPI-stack analysis (the L1-hit cost counts as base pipeline
        // work, not stall).
        let stall = if res.source == MemLevel::L1 && !res.tlb_miss {
            self.cfg.l1_hit_cost
        } else {
            (res.latency as f64 / self.cores[core].overlap).max(self.cfg.l1_hit_cost)
        };
        let stall_cycles = (stall - self.cfg.l1_hit_cost).max(0.0).round() as u64;
        if stall_cycles > 0 {
            let kind = match res.source {
                MemLevel::L1 | MemLevel::L2 => EventKind::StallL2,
                MemLevel::L3 => EventKind::StallL3,
                MemLevel::Dram => EventKind::StallDram,
            };
            self.cores[core].pmu.add(kind, stall_cycles);
        }
        self.advance(core, stall);

        // PEBS.
        if self.cores[core].mux.is_some() {
            let op = MemOp {
                ip: ip.0,
                addr,
                size,
                kind,
                latency: res.latency,
                source: res.source,
                tlb_miss: res.tlb_miss,
            };
            let now = self.cores[core].clock();
            let st = &mut self.cores[core];
            let mux = st.mux.as_mut().expect("checked above");
            let idx = mux.active_index(now);
            let rotated = idx != st.last_mux_index;
            st.last_mux_index = idx;
            let sample = mux.observe(core, &op, now);
            let label = rotated.then(|| {
                mux.stats().per_event[idx].0.clone()
            });
            if let Some(label) = label {
                self.tracer.record_mux_switch(core, idx, &label, now);
            }
            if let Some(s) = sample {
                self.tracer.record_pebs(s);
            }
        }

        self.poll_timer(core, ip);
    }

    /// PMU/clock accounting of buffered non-memory work.
    fn account_compute(&mut self, core: usize, ip: Ip, instructions: u64, branches: u64) {
        {
            let pmu = &mut self.cores[core].pmu;
            pmu.add(EventKind::Instructions, instructions);
            pmu.add(EventKind::Branches, branches);
        }
        self.advance(core, instructions as f64 * self.cfg.base_cpi);
        self.poll_timer(core, ip);
    }
}

impl AppContext for Machine {
    fn core_count(&self) -> usize {
        self.cfg.cores
    }

    fn location(&mut self, file: &str, line: u32, function: &str) -> Ip {
        self.tracer.location(file, line, function)
    }

    fn malloc(&mut self, core: usize, size: u64, callsite: &CodeLocation) -> u64 {
        self.flush_epoch();
        let now = self.cores[core].clock();
        self.tracer.malloc(size, callsite, now)
    }

    fn free(&mut self, core: usize, addr: u64) {
        self.flush_epoch();
        let now = self.cores[core].clock();
        self.tracer.free(addr, now);
    }

    fn begin_alloc_group(&mut self, name: &str) {
        self.tracer.begin_alloc_group(name);
    }

    fn end_alloc_group(&mut self) {
        let _ = self.tracer.end_alloc_group();
    }

    fn register_static(&mut self, name: &str, size: u64) -> u64 {
        let base = self.static_next;
        self.static_next += (size + 63) & !63;
        self.tracer.register_static(name, base, size);
        base
    }

    fn enter(&mut self, core: usize, region: &str) {
        self.flush_epoch();
        let snap = self.cores[core].pmu.snapshot();
        let now = self.cores[core].clock();
        self.tracer.enter(core, region, snap, now);
    }

    fn exit(&mut self, core: usize, region: &str) {
        self.flush_epoch();
        let snap = self.cores[core].pmu.snapshot();
        let now = self.cores[core].clock();
        self.tracer.exit(core, region, snap, now);
    }

    fn load(&mut self, core: usize, ip: Ip, addr: u64, size: u32) {
        self.push_mem(core, ip, addr, size, AccessKind::Load);
    }

    fn store(&mut self, core: usize, ip: Ip, addr: u64, size: u32) {
        self.push_mem(core, ip, addr, size, AccessKind::Store);
    }

    fn access_batch(&mut self, core: usize, ops: &[MemRequest]) {
        self.epoch_mem[core].reserve(ops.len());
        self.epoch.reserve(ops.len());
        for op in ops {
            self.epoch.push(EpochOp::Mem { core: core as u32, ip: op.ip });
            self.epoch_mem[core].push(BatchOp {
                kind: if op.store { AccessKind::Store } else { AccessKind::Load },
                addr: op.addr,
                size: op.size,
            });
        }
        if self.epoch.len() >= self.cfg.epoch_cap {
            self.flush_epoch();
        }
    }

    fn compute(&mut self, core: usize, ip: Ip, instructions: u64, branches: u64) {
        self.epoch.push(EpochOp::Compute { core: core as u32, ip, instructions, branches });
        if self.epoch.len() >= self.cfg.epoch_cap {
            self.flush_epoch();
        }
    }

    fn set_overlap(&mut self, core: usize, overlap: f64) {
        assert!(overlap >= 1.0, "overlap must be >= 1");
        // Buffered ops were issued under the old overlap; retire them
        // before it changes.
        self.flush_epoch();
        self.cores[core].overlap = overlap;
    }

    fn barrier(&mut self) {
        self.flush_epoch();
        let max = self
            .cores
            .iter()
            .map(|c| c.clock_f)
            .fold(0.0f64, f64::max);
        for core in 0..self.cores.len() {
            let delta = max - self.cores[core].clock_f;
            if delta > 0.0 {
                self.advance(core, delta);
            }
        }
    }

    fn now(&mut self, core: usize) -> u64 {
        self.flush_epoch();
        self.cores[core].clock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_extrae::events::EventPayload;

    /// A micro-workload: streams over one array, then pointer-hops.
    struct Micro {
        n: usize,
    }

    impl Workload for Micro {
        fn name(&self) -> String {
            "micro".into()
        }

        fn run(&mut self, ctx: &mut dyn AppContext) {
            let ip = ctx.location("micro.rs", 1, "micro");
            let base = ctx.malloc(0, (self.n * 8) as u64, &CodeLocation::new("micro.rs", 2, "m"));
            ctx.enter(0, "stream");
            ctx.set_overlap(0, 8.0);
            for i in 0..self.n {
                ctx.load(0, ip, base + (i * 8) as u64, 8);
                ctx.compute(0, ip, 2, 1);
            }
            ctx.exit(0, "stream");
            ctx.enter(0, "stores");
            for i in 0..self.n {
                ctx.store(0, ip, base + (i * 8) as u64, 8);
                ctx.compute(0, ip, 2, 1);
            }
            ctx.exit(0, "stores");
        }
    }

    #[test]
    fn run_produces_trace_and_stats() {
        let mut m = Machine::new(MachineConfig::small());
        let rep = m.run(&mut Micro { n: 4096 });
        assert!(rep.trace.num_events() > 10);
        assert!(rep.wall_cycles > 0);
        assert!(rep.wall_seconds() > 0.0);
        let total = rep.stats.total_cores();
        assert_eq!(total.loads, 4096);
        assert_eq!(total.stores, 4096);
        // Counter coherence: PMU loads equal memsim loads.
        let exit = rep
            .trace
            .events
            .iter()
            .rev()
            .find_map(|e| match &e.payload {
                EventPayload::RegionExit { counters, .. } => Some(*counters),
                _ => None,
            })
            .unwrap();
        assert_eq!(exit.get(EventKind::Loads), 4096);
        assert_eq!(exit.get(EventKind::Stores), 4096);
        assert!(exit.get(EventKind::Instructions) >= 4 * 4096);
    }

    #[test]
    fn pebs_samples_are_captured_and_resolved() {
        let mut m = Machine::new(MachineConfig::small());
        let rep = m.run(&mut Micro { n: 50_000 });
        let pebs: Vec<_> = rep.trace.pebs_events().collect();
        assert!(pebs.len() > 20, "expected plenty of samples, got {}", pebs.len());
        // The array is one big tracked allocation: samples resolve.
        assert!(rep.trace.resolution.resolved > 0);
        assert_eq!(rep.trace.resolution.unresolved, 0);
        // Multiplexing captured both loads and stores in one run.
        let loads = pebs.iter().filter(|(_, s, _)| !s.is_store).count();
        let stores = pebs.iter().filter(|(_, s, _)| s.is_store).count();
        assert!(loads > 0 && stores > 0, "loads {loads} stores {stores}");
    }

    #[test]
    fn timer_samples_appear_at_configured_rate() {
        let mut m = Machine::new(MachineConfig::small());
        let rep = m.run(&mut Micro { n: 20_000 });
        let samples = rep
            .trace
            .events
            .iter()
            .filter(|e| matches!(e.payload, EventPayload::CounterSample { .. }))
            .count();
        let expect = rep.wall_cycles / 2_000;
        assert!(
            (samples as i64 - expect as i64).unsigned_abs() <= expect / 4 + 2,
            "samples {samples}, expected ≈{expect}"
        );
    }

    #[test]
    fn overlap_reduces_runtime() {
        let run_with = |overlap: f64| {
            struct W {
                overlap: f64,
            }
            impl Workload for W {
                fn name(&self) -> String {
                    "w".into()
                }
                fn run(&mut self, ctx: &mut dyn AppContext) {
                    let ip = ctx.location("w.rs", 1, "w");
                    let base =
                        ctx.malloc(0, 1 << 22, &CodeLocation::new("w.rs", 2, "w"));
                    ctx.set_overlap(0, self.overlap);
                    ctx.enter(0, "r");
                    for i in 0..40_000u64 {
                        ctx.load(0, ip, base + i * 64, 8);
                    }
                    ctx.exit(0, "r");
                }
            }
            let mut m = Machine::new(MachineConfig::small());
            m.run(&mut W { overlap }).wall_cycles
        };
        let serial = run_with(1.0);
        let parallel = run_with(8.0);
        assert!(
            parallel * 2 < serial,
            "8-way overlap ({parallel}) should be far faster than serial ({serial})"
        );
    }

    #[test]
    fn barrier_aligns_clocks() {
        struct W;
        impl Workload for W {
            fn name(&self) -> String {
                "w".into()
            }
            fn run(&mut self, ctx: &mut dyn AppContext) {
                let ip = ctx.location("w.rs", 1, "w");
                ctx.compute(0, ip, 10_000, 0);
                ctx.compute(1, ip, 100, 0);
                ctx.barrier();
                assert_eq!(ctx.now(0), ctx.now(1));
            }
        }
        let mut cfg = MachineConfig::small();
        cfg.cores = 2;
        let mut m = Machine::new(cfg);
        let _ = m.run(&mut W);
    }

    #[test]
    fn pebs_core_selection_restricts_sampling() {
        struct W;
        impl Workload for W {
            fn name(&self) -> String {
                "w".into()
            }
            fn run(&mut self, ctx: &mut dyn AppContext) {
                let ip = ctx.location("w.rs", 1, "w");
                let b0 = ctx.malloc(0, 1 << 20, &CodeLocation::new("w.rs", 2, "w"));
                ctx.enter(0, "r");
                ctx.enter(1, "r");
                for i in 0..30_000u64 {
                    ctx.load(0, ip, b0 + (i % 1000) * 8, 8);
                    ctx.load(1, ip, b0 + (i % 1000) * 8, 8);
                }
                ctx.exit(1, "r");
                ctx.exit(0, "r");
            }
        }
        let mut cfg = MachineConfig::small();
        cfg.cores = 2;
        cfg.pebs_cores = PebsCoreSelect::Only(1);
        let mut m = Machine::new(cfg);
        let rep = m.run(&mut W);
        assert!(rep.mux_stats[0].is_none());
        assert!(rep.mux_stats[1].is_some());
        assert!(rep.trace.pebs_events().all(|(_, s, _)| s.core == 1));
        assert!(rep.trace.pebs_events().count() > 0);
    }

    /// Four cores streaming over private slabs with occasional
    /// barriers and one shared (conflicting) phase — exercises both the
    /// pipelined and the exact-replay epoch paths.
    struct MultiCore {
        n: usize,
    }

    impl Workload for MultiCore {
        fn name(&self) -> String {
            "multicore".into()
        }

        fn run(&mut self, ctx: &mut dyn AppContext) {
            let cores = ctx.core_count();
            let ip = ctx.location("mc.rs", 1, "mc");
            let slab = 1u64 << 20;
            let base = ctx.malloc(0, slab * cores as u64, &CodeLocation::new("mc.rs", 2, "mc"));
            ctx.enter(0, "private");
            for i in 0..self.n {
                for c in 0..cores {
                    let a = base + c as u64 * slab + ((i * 24) as u64 % slab);
                    if i % 3 == 0 {
                        ctx.store(c, ip, a, 8);
                    } else {
                        ctx.load(c, ip, a, 8);
                    }
                    ctx.compute(c, ip, 2, 1);
                }
                if i % 1000 == 999 {
                    ctx.barrier();
                }
            }
            ctx.exit(0, "private");
            // Shared phase: every core reads the same lines.
            ctx.enter(0, "shared");
            for i in 0..self.n / 4 {
                for c in 0..cores {
                    ctx.load(c, ip, base + ((i * 8) as u64 % 4096), 8);
                }
            }
            ctx.exit(0, "shared");
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let run = |threads: usize| {
            let mut cfg = MachineConfig::small();
            cfg.cores = 4;
            cfg.threads = threads;
            let mut m = Machine::new(cfg);
            let rep = m.run(&mut MultiCore { n: 6000 });
            (rep.stats, rep.wall_cycles, rep.trace.events)
        };
        let seq = run(1);
        let two = run(2);
        let four = run(4);
        assert_eq!(seq.0, two.0, "memsim stats differ between 1 and 2 threads");
        assert_eq!(seq.0, four.0, "memsim stats differ between 1 and 4 threads");
        assert_eq!(seq.1, two.1);
        assert_eq!(seq.1, four.1);
        assert_eq!(seq.2, two.2, "trace events differ between 1 and 2 threads");
        assert_eq!(seq.2, four.2, "trace events differ between 1 and 4 threads");
    }

    #[test]
    fn batch_issue_equals_singles_on_machine() {
        struct W {
            batched: bool,
        }
        impl Workload for W {
            fn name(&self) -> String {
                "w".into()
            }
            fn run(&mut self, ctx: &mut dyn AppContext) {
                let ip = ctx.location("w.rs", 1, "w");
                let base = ctx.malloc(0, 1 << 18, &CodeLocation::new("w.rs", 2, "w"));
                ctx.enter(0, "r");
                if self.batched {
                    let ops: Vec<MemRequest> = (0..20_000u64)
                        .map(|i| {
                            let a = base + (i * 40) % (1 << 18);
                            if i % 5 == 0 {
                                MemRequest::store(ip, a, 8)
                            } else {
                                MemRequest::load(ip, a, 8)
                            }
                        })
                        .collect();
                    ctx.access_batch(0, &ops);
                } else {
                    for i in 0..20_000u64 {
                        let a = base + (i * 40) % (1 << 18);
                        if i % 5 == 0 {
                            ctx.store(0, ip, a, 8);
                        } else {
                            ctx.load(0, ip, a, 8);
                        }
                    }
                }
                ctx.exit(0, "r");
            }
        }
        let run = |batched: bool| {
            let mut m = Machine::new(MachineConfig::small());
            let rep = m.run(&mut W { batched });
            (rep.stats, rep.wall_cycles, rep.trace.events)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn deterministic_end_to_end() {
        let run = || {
            let mut m = Machine::new(MachineConfig::small());
            let rep = m.run(&mut Micro { n: 10_000 });
            (rep.wall_cycles, rep.trace.num_events())
        };
        assert_eq!(run(), run());
    }
}
