//! Flat sampling profile from the timer samples' region stacks.
//!
//! Every timer sample carries the stack of open instrumented regions;
//! counting samples per innermost region gives the classic flat
//! profile (share of time per routine), and counting per *stack
//! member* the inclusive profile — the "source code" dimension of the
//! paper's three-way view, aggregated.

use mempersp_extrae::events::EventPayload;
use mempersp_extrae::Trace;
use serde::{Deserialize, Serialize};

/// One row of the profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileRow {
    pub region: String,
    /// Samples with this region innermost (exclusive / self).
    pub self_samples: u64,
    /// Samples with this region anywhere on the stack (inclusive).
    pub inclusive_samples: u64,
}

impl ProfileRow {
    /// Self share of the total samples.
    pub fn self_fraction(&self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.self_samples as f64 / total as f64
        }
    }
}

/// The flat profile of a trace (all cores), sorted by descending self
/// samples. Returns `(rows, total_samples)`; samples taken outside
/// any region are counted in the total but belong to no row.
pub fn flat_profile(trace: &Trace) -> (Vec<ProfileRow>, u64) {
    let n = trace.region_names.len();
    let mut self_s = vec![0u64; n];
    let mut incl = vec![0u64; n];
    let mut total = 0u64;
    for e in &trace.events {
        if let EventPayload::CounterSample { stack, .. } = &e.payload {
            total += 1;
            if let Some(inner) = stack.last() {
                self_s[inner.0 as usize] += 1;
            }
            let mut seen = std::collections::HashSet::new();
            for r in stack {
                if seen.insert(r.0) {
                    incl[r.0 as usize] += 1;
                }
            }
        }
    }
    let mut rows: Vec<ProfileRow> = (0..n)
        .filter(|&i| incl[i] > 0)
        .map(|i| ProfileRow {
            region: trace.region_names[i].clone(),
            self_samples: self_s[i],
            inclusive_samples: incl[i],
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.self_samples));
    (rows, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_extrae::{Tracer, TracerConfig};
    use mempersp_pebs::CounterSnapshot;

    #[test]
    fn self_and_inclusive_counts() {
        let mut t = Tracer::new(TracerConfig::default(), 1);
        let ip = t.location("f.c", 1, "f");
        let c = CounterSnapshot::default();
        t.enter(0, "outer", c, 0);
        t.record_counter_sample(0, ip, c, 10); // outer self
        t.enter(0, "inner", c, 20);
        t.record_counter_sample(0, ip, c, 30); // inner self, outer inclusive
        t.record_counter_sample(0, ip, c, 40);
        t.exit(0, "inner", c, 50);
        t.exit(0, "outer", c, 60);
        t.record_counter_sample(0, ip, c, 70); // no region
        let tr = t.finish("profile");

        let (rows, total) = flat_profile(&tr);
        assert_eq!(total, 4);
        let outer = rows.iter().find(|r| r.region == "outer").unwrap();
        let inner = rows.iter().find(|r| r.region == "inner").unwrap();
        assert_eq!(outer.self_samples, 1);
        assert_eq!(outer.inclusive_samples, 3);
        assert_eq!(inner.self_samples, 2);
        assert_eq!(inner.inclusive_samples, 2);
        assert!((inner.self_fraction(total) - 0.5).abs() < 1e-12);
        // Sorted by self samples.
        assert_eq!(rows[0].region, "inner");
    }

    #[test]
    fn recursive_stack_counts_inclusive_once() {
        let mut t = Tracer::new(TracerConfig::default(), 1);
        let ip = t.location("f.c", 1, "f");
        let c = CounterSnapshot::default();
        t.enter(0, "rec", c, 0);
        t.enter(0, "rec", c, 10);
        t.record_counter_sample(0, ip, c, 20);
        t.exit(0, "rec", c, 30);
        t.exit(0, "rec", c, 40);
        let tr = t.finish("rec");
        let (rows, _) = flat_profile(&tr);
        assert_eq!(rows[0].inclusive_samples, 1, "double-counted recursion");
        assert_eq!(rows[0].self_samples, 1);
    }

    #[test]
    fn empty_trace_profile() {
        let t = Tracer::new(TracerConfig::default(), 1);
        let (rows, total) = flat_profile(&t.finish("empty"));
        assert!(rows.is_empty());
        assert_eq!(total, 0);
    }
}
