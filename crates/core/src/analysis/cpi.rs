//! CPI-stack decomposition of the folded performance panel.
//!
//! The machine attributes every memory stall cycle to the level that
//! served the access (`StallL2`/`StallL3`/`StallDram` counters); this
//! module divides the folded cycle budget into *base* (issue +
//! L1-resident work) and the per-level stall components — the "where
//! do my cycles go" view that complements the paper's MIPS curve.

use mempersp_folding::FoldedRegion;
use mempersp_pebs::EventKind;
use serde::{Deserialize, Serialize};

/// Cycles-per-instruction decomposition at one folded time (or as an
/// aggregate over the whole folded instance).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpiStack {
    /// Total cycles per instruction.
    pub total: f64,
    /// Issue + L1-resident component (total − stalls).
    pub base: f64,
    /// Stall cycles per instruction charged to L2-served accesses.
    pub l2: f64,
    /// ... to L3-served accesses.
    pub l3: f64,
    /// ... to DRAM-served accesses.
    pub dram: f64,
}

impl CpiStack {
    /// Fraction of cycles spent stalled on memory.
    pub fn memory_bound_fraction(&self) -> f64 {
        if self.total <= 0.0 {
            0.0
        } else {
            (self.l2 + self.l3 + self.dram) / self.total
        }
    }
}

fn stack_from(cycles: f64, inst: f64, l2: f64, l3: f64, dram: f64) -> CpiStack {
    if inst <= 0.0 {
        return CpiStack { total: 0.0, base: 0.0, l2: 0.0, l3: 0.0, dram: 0.0 };
    }
    let total = cycles / inst;
    let l2 = l2 / inst;
    let l3 = l3 / inst;
    let dram = dram / inst;
    CpiStack { total, base: (total - l2 - l3 - dram).max(0.0), l2, l3, dram }
}

/// Instantaneous CPI stack at folded time `x`.
pub fn cpi_stack_at(folded: &FoldedRegion, x: f64) -> CpiStack {
    stack_from(
        folded.counter(EventKind::Cycles).rate_at(x),
        folded.counter(EventKind::Instructions).rate_at(x),
        folded.counter(EventKind::StallL2).rate_at(x),
        folded.counter(EventKind::StallL3).rate_at(x),
        folded.counter(EventKind::StallDram).rate_at(x),
    )
}

/// Aggregate CPI stack over the whole folded instance.
pub fn cpi_stack_mean(folded: &FoldedRegion) -> CpiStack {
    stack_from(
        folded.counter(EventKind::Cycles).avg_total,
        folded.counter(EventKind::Instructions).avg_total,
        folded.counter(EventKind::StallL2).avg_total,
        folded.counter(EventKind::StallL3).avg_total,
        folded.counter(EventKind::StallDram).avg_total,
    )
}

/// Aggregate CPI stack of a folded sub-interval `[x0, x1]` (e.g. one
/// detected phase).
pub fn cpi_stack_window(folded: &FoldedRegion, x0: f64, x1: f64) -> CpiStack {
    let delta = |k: EventKind| {
        let c = folded.counter(k);
        c.cumulative_at(x1) - c.cumulative_at(x0)
    };
    stack_from(
        delta(EventKind::Cycles),
        delta(EventKind::Instructions),
        delta(EventKind::StallL2),
        delta(EventKind::StallL3),
        delta(EventKind::StallDram),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_folding::{FoldedCounter, MonotoneCurve, PooledSamples};

    fn folded(totals: [(EventKind, f64); 5]) -> FoldedRegion {
        let mut counters: Vec<FoldedCounter> = EventKind::ALL
            .iter()
            .map(|&kind| FoldedCounter {
                kind,
                curve: MonotoneCurve::identity(),
                avg_total: 0.0,
                points: 0,
            })
            .collect();
        for (k, v) in totals {
            counters[k.index()].avg_total = v;
        }
        FoldedRegion {
            region: "r".into(),
            instances_used: 1,
            instances_rejected: 0,
            avg_duration_cycles: 1000.0,
            freq_mhz: 1000,
            counters,
            pooled: PooledSamples::default(),
        }
    }

    #[test]
    fn decomposition_adds_up() {
        let f = folded([
            (EventKind::Instructions, 1000.0),
            (EventKind::Cycles, 2000.0),
            (EventKind::StallL2, 200.0),
            (EventKind::StallL3, 300.0),
            (EventKind::StallDram, 500.0),
        ]);
        let s = cpi_stack_mean(&f);
        assert!((s.total - 2.0).abs() < 1e-12);
        assert!((s.l2 - 0.2).abs() < 1e-12);
        assert!((s.l3 - 0.3).abs() < 1e-12);
        assert!((s.dram - 0.5).abs() < 1e-12);
        assert!((s.base - 1.0).abs() < 1e-12);
        assert!((s.memory_bound_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn window_of_uniform_curves_matches_mean() {
        let f = folded([
            (EventKind::Instructions, 1000.0),
            (EventKind::Cycles, 3000.0),
            (EventKind::StallL2, 0.0),
            (EventKind::StallL3, 0.0),
            (EventKind::StallDram, 1500.0),
        ]);
        let w = cpi_stack_window(&f, 0.25, 0.75);
        let m = cpi_stack_mean(&f);
        assert!((w.total - m.total).abs() < 1e-9);
        assert!((w.dram - m.dram).abs() < 1e-9);
    }

    #[test]
    fn zero_instructions_is_all_zero() {
        let f = folded([
            (EventKind::Instructions, 0.0),
            (EventKind::Cycles, 100.0),
            (EventKind::StallL2, 0.0),
            (EventKind::StallL3, 0.0),
            (EventKind::StallDram, 0.0),
        ]);
        let s = cpi_stack_mean(&f);
        assert_eq!(s.total, 0.0);
        assert_eq!(s.memory_bound_fraction(), 0.0);
    }

    #[test]
    fn instantaneous_stack_positive() {
        let f = folded([
            (EventKind::Instructions, 500.0),
            (EventKind::Cycles, 1000.0),
            (EventKind::StallL2, 100.0),
            (EventKind::StallL3, 0.0),
            (EventKind::StallDram, 200.0),
        ]);
        let s = cpi_stack_at(&f, 0.5);
        assert!(s.total > 0.0);
        assert!(s.base >= 0.0);
    }
}
