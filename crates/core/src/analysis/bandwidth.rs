//! Per-phase traversal-bandwidth estimation.
//!
//! The paper approximates the memory bandwidth of a phase that is
//! known to traverse a data structure once as *structure size /
//! phase duration* (e.g. a1 ≈ 4197 MB/s over the 617 MB matrix).
//! [`phase_bandwidths`] reproduces exactly that arithmetic on the
//! folded iteration.

use crate::analysis::phases::Phase;
use mempersp_folding::FoldedRegion;
use serde::{Deserialize, Serialize};

/// Bandwidth estimate of one phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseBandwidth {
    pub label: String,
    /// Mean phase duration in seconds.
    pub seconds: f64,
    /// Bytes assumed traversed (the structure size).
    pub bytes: u64,
    /// Estimated bandwidth in MB/s (decimal, as the paper quotes).
    pub mb_per_s: f64,
}

/// Traversal bandwidth in MB/s.
pub fn traversal_mb_per_s(bytes: u64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        0.0
    } else {
        bytes as f64 / 1e6 / seconds
    }
}

/// Estimate the bandwidth of each phase under the assumption that it
/// traverses `bytes_per_traversal` once. `folded` supplies the mean
/// iteration duration that converts normalized phase extents into
/// seconds.
pub fn phase_bandwidths(
    folded: &FoldedRegion,
    phases: &[Phase],
    bytes_per_traversal: u64,
) -> Vec<PhaseBandwidth> {
    let dur_s = folded.duration_s();
    phases
        .iter()
        .map(|p| {
            let seconds = p.fraction() * dur_s;
            PhaseBandwidth {
                label: p.label.clone(),
                seconds,
                bytes: bytes_per_traversal,
                mb_per_s: traversal_mb_per_s(bytes_per_traversal, seconds),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_folding::{FoldedCounter, MonotoneCurve, PooledSamples};
    use mempersp_pebs::EventKind;

    fn folded_with_duration(cycles: f64, freq_mhz: u32) -> FoldedRegion {
        FoldedRegion {
            region: "it".into(),
            instances_used: 1,
            instances_rejected: 0,
            avg_duration_cycles: cycles,
            freq_mhz,
            counters: EventKind::ALL
                .iter()
                .map(|&kind| FoldedCounter {
                    kind,
                    curve: MonotoneCurve::identity(),
                    avg_total: 0.0,
                    points: 0,
                })
                .collect(),
            pooled: PooledSamples::default(),
        }
    }

    #[test]
    fn bandwidth_arithmetic() {
        // 1 GHz, 1e9 cycles = 1 s iteration; phase = 10 % = 0.1 s;
        // 100 MB structure → 1000 MB/s.
        let folded = folded_with_duration(1e9, 1000);
        let phases = vec![Phase {
            label: "a1".into(),
            region: "SYMGS".into(),
            x_start: 0.2,
            x_end: 0.3,
        }];
        let bw = phase_bandwidths(&folded, &phases, 100_000_000);
        assert_eq!(bw.len(), 1);
        assert!((bw[0].seconds - 0.1).abs() < 1e-12);
        assert!((bw[0].mb_per_s - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_is_zero_bandwidth() {
        assert_eq!(traversal_mb_per_s(1000, 0.0), 0.0);
    }
}
