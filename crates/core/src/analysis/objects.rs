//! Per-object access statistics from the PEBS samples — the basis for
//! the paper's observations that part of the address space is only
//! read during the execution phase, and for the data-source/latency
//! breakdown per structure.

use mempersp_extrae::query::{EventClass, Query};
use mempersp_extrae::trace_source::{ScanStats, TraceSource};
use mempersp_extrae::{ObjectId, Trace};
use mempersp_memsim::MemLevel;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregate PEBS statistics of one data object (or of the
/// unresolved-address bucket).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectStat {
    /// `None` = samples whose address resolved to no object.
    pub id: Option<ObjectId>,
    pub name: String,
    pub loads: u64,
    pub stores: u64,
    /// Mean sampled access latency (cycles).
    pub mean_latency: f64,
    /// Samples served per level, indexed L1/L2/L3/DRAM.
    pub by_source: [u64; 4],
    /// Address extent of the samples.
    pub addr_min: u64,
    pub addr_max: u64,
}

impl ObjectStat {
    pub fn total(&self) -> u64 {
        self.loads + self.stores
    }

    /// An object the execution phase never writes (figure: "no stores
    /// in the lower part of the address space").
    pub fn is_read_only(&self) -> bool {
        self.stores == 0 && self.loads > 0
    }
}

fn source_index(l: MemLevel) -> usize {
    match l {
        MemLevel::L1 => 0,
        MemLevel::L2 => 1,
        MemLevel::L3 => 2,
        MemLevel::Dram => 3,
    }
}

/// Aggregate every PEBS sample in the trace by resolved object,
/// sorted by descending sample count. Samples outside `window`
/// (cycles) are ignored when a window is given — pass the execution
/// phase's extent to reproduce the paper's setup-excluded analysis.
pub fn object_stats(trace: &Trace, window: Option<(u64, u64)>) -> Vec<ObjectStat> {
    struct Acc {
        loads: u64,
        stores: u64,
        lat_sum: u64,
        by_source: [u64; 4],
        addr_min: u64,
        addr_max: u64,
    }
    let mut map: BTreeMap<Option<u32>, Acc> = BTreeMap::new();
    for (_, s, obj) in trace.pebs_events() {
        if let Some((lo, hi)) = window {
            if s.timestamp < lo || s.timestamp > hi {
                continue;
            }
        }
        let key = obj.map(|o| o.0);
        let acc = map.entry(key).or_insert(Acc {
            loads: 0,
            stores: 0,
            lat_sum: 0,
            by_source: [0; 4],
            addr_min: u64::MAX,
            addr_max: 0,
        });
        if s.is_store {
            acc.stores += 1;
        } else {
            acc.loads += 1;
        }
        acc.lat_sum += s.latency as u64;
        acc.by_source[source_index(s.source)] += 1;
        acc.addr_min = acc.addr_min.min(s.addr);
        acc.addr_max = acc.addr_max.max(s.addr);
    }
    let mut out: Vec<ObjectStat> = map
        .into_iter()
        .map(|(key, a)| {
            let (id, name) = match key {
                Some(raw) => {
                    let id = ObjectId(raw);
                    let name = trace
                        .objects
                        .get(id)
                        .map(|o| o.name.clone())
                        .unwrap_or_else(|| format!("<object {raw}>"));
                    (Some(id), name)
                }
                None => (None, "<unresolved>".to_string()),
            };
            let total = a.loads + a.stores;
            ObjectStat {
                id,
                name,
                loads: a.loads,
                stores: a.stores,
                mean_latency: if total == 0 { 0.0 } else { a.lat_sum as f64 / total as f64 },
                by_source: a.by_source,
                addr_min: a.addr_min,
                addr_max: a.addr_max,
            }
        })
        .collect();
    out.sort_by_key(|s| std::cmp::Reverse(s.total()));
    out
}

/// [`object_stats`] over any [`TraceSource`]. Only PEBS events — the
/// single kind this analysis reads — are pulled from the source, and
/// the window (when given) is pushed down as a time predicate, so an
/// indexed `.mps` store decodes only the chunks that can contribute.
/// Returns the stats together with the scan's cost accounting.
pub fn object_stats_source(
    source: &mut dyn TraceSource,
    window: Option<(u64, u64)>,
) -> std::io::Result<(Vec<ObjectStat>, ScanStats)> {
    let mut q = Query::all().with_kinds(&[EventClass::Pebs]);
    if let Some((lo, hi)) = window {
        // PEBS events carry `cycles == sample.timestamp`, so the
        // envelope-time predicate is exactly the sample window.
        q = q.in_time(lo, hi);
    }
    let (trace, stats) = source.filtered(&q)?;
    Ok((object_stats(&trace, window), stats))
}

/// The fraction of samples that resolved to an object (the paper's
/// "preliminary analysis" number).
pub fn resolved_fraction(stats: &[ObjectStat]) -> f64 {
    let total: u64 = stats.iter().map(|s| s.total()).sum();
    let unresolved: u64 = stats.iter().filter(|s| s.id.is_none()).map(|s| s.total()).sum();
    if total == 0 {
        0.0
    } else {
        (total - unresolved) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_extrae::{CodeLocation, Tracer, TracerConfig};
    use mempersp_pebs::PebsSample;

    fn sample(addr: u64, ts: u64, is_store: bool, latency: u32, source: MemLevel) -> PebsSample {
        PebsSample {
            timestamp: ts,
            core: 0,
            ip: 0,
            addr,
            size: 8,
            is_store,
            latency,
            source,
            tlb_miss: false,
        }
    }

    fn make_trace() -> Trace {
        let mut t = Tracer::new(TracerConfig::default(), 1);
        let a = t.malloc(1 << 20, &CodeLocation::new("gen.cpp", 110, "g"), 0);
        let b = t.malloc(1 << 20, &CodeLocation::new("gen.cpp", 143, "g"), 1);
        // Object A: loads only. Object B: mixed. Plus one unresolved.
        t.record_pebs(sample(a + 100, 10, false, 200, MemLevel::Dram));
        t.record_pebs(sample(a + 200, 20, false, 40, MemLevel::L3));
        t.record_pebs(sample(b + 100, 30, false, 10, MemLevel::L2));
        t.record_pebs(sample(b + 200, 40, true, 4, MemLevel::L1));
        t.record_pebs(sample(0x10, 50, false, 4, MemLevel::L1));
        t.finish("obj stats")
    }

    #[test]
    fn aggregates_by_object() {
        let tr = make_trace();
        let stats = object_stats(&tr, None);
        assert_eq!(stats.len(), 3);
        let a = stats.iter().find(|s| s.name == "gen.cpp:110").unwrap();
        assert_eq!(a.loads, 2);
        assert_eq!(a.stores, 0);
        assert!(a.is_read_only());
        assert!((a.mean_latency - 120.0).abs() < 1e-12);
        assert_eq!(a.by_source, [0, 0, 1, 1]);
        let b = stats.iter().find(|s| s.name == "gen.cpp:143").unwrap();
        assert!(!b.is_read_only());
        let u = stats.iter().find(|s| s.id.is_none()).unwrap();
        assert_eq!(u.name, "<unresolved>");
        assert_eq!(u.total(), 1);
    }

    #[test]
    fn window_filters_samples() {
        let tr = make_trace();
        let stats = object_stats(&tr, Some((25, 45)));
        let total: u64 = stats.iter().map(|s| s.total()).sum();
        assert_eq!(total, 2, "only the two B samples fall in [25,45]");
    }

    #[test]
    fn resolved_fraction_counts_unresolved() {
        let tr = make_trace();
        let stats = object_stats(&tr, None);
        assert!((resolved_fraction(&stats) - 0.8).abs() < 1e-12);
        assert_eq!(resolved_fraction(&[]), 0.0);
    }
}
