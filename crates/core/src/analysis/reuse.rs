//! Sampled reuse-distance estimation.
//!
//! The paper's introduction lists "calculating reuse distances" among
//! the analyses that memory-access information enables. Exact reuse
//! distance needs the full access stream; from *sampled* accesses we
//! compute the standard approximation: for consecutive samples of the
//! same cache line, the number of **distinct** other lines sampled in
//! between. With uniform sampling this preserves the distribution's
//! shape (Zhong et al.'s sampling argument), which is what locality
//! diagnosis needs.

use mempersp_extrae::Trace;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Histogram of sampled reuse distances in power-of-two buckets:
/// bucket `i` counts reuses with distance in `[2^i, 2^(i+1))`
/// (bucket 0 holds distances 0 and 1).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReuseHistogram {
    pub buckets: Vec<u64>,
    /// Lines sampled exactly once (no reuse observed).
    pub cold: u64,
    /// Total reuse pairs observed.
    pub reuses: u64,
}

impl ReuseHistogram {
    fn record(&mut self, distance: usize) {
        let bucket = (usize::BITS - distance.max(1).leading_zeros() - 1) as usize;
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        self.reuses += 1;
    }

    /// Median bucket's lower bound (a robust "typical reuse distance"
    /// in sampled-lines units); `None` without reuses.
    pub fn typical_distance(&self) -> Option<u64> {
        if self.reuses == 0 {
            return None;
        }
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen * 2 >= self.reuses {
                return Some(1u64 << i);
            }
        }
        None
    }

    /// Fraction of reuse pairs whose distance is below `lines`.
    pub fn fraction_below(&self, lines: u64) -> f64 {
        if self.reuses == 0 {
            return 0.0;
        }
        let mut below = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if (1u64 << i) < lines {
                below += c;
            }
        }
        below as f64 / self.reuses as f64
    }
}

/// Estimate the reuse-distance histogram of the PEBS samples on
/// `core` (line granularity, `line_size` bytes).
pub fn sampled_reuse_histogram(trace: &Trace, core: usize, line_size: u64) -> ReuseHistogram {
    let mask = !(line_size - 1);
    // last_seen: line -> index in the sampled sequence; between two
    // touches of a line, count distinct lines via a per-line epoch set
    // approximation: we track the sequence of sampled lines and use a
    // tree-less counting pass (samples are few, so an O(n·d) scan with
    // a small map is fine).
    let lines: Vec<u64> = trace
        .pebs_events()
        .filter(|(_, s, _)| s.core == core)
        .map(|(_, s, _)| s.addr & mask)
        .collect();
    let mut hist = ReuseHistogram::default();
    let mut last_pos: HashMap<u64, usize> = HashMap::new();
    // For distance counting, remember for each position the line; on a
    // reuse at position j of a line last seen at i, distance = number
    // of distinct lines in lines[i+1..j].
    for (j, &line) in lines.iter().enumerate() {
        if let Some(&i) = last_pos.get(&line) {
            let distinct: std::collections::HashSet<u64> =
                lines[i + 1..j].iter().copied().collect();
            hist.record(distinct.len());
        }
        last_pos.insert(line, j);
    }
    hist.cold = last_pos.len() as u64 - hist_reused_lines(&lines);
    hist
}

fn hist_reused_lines(lines: &[u64]) -> u64 {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for &l in lines {
        *counts.entry(l).or_insert(0) += 1;
    }
    counts.values().filter(|&&c| c > 1).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_extrae::{Tracer, TracerConfig};
    use mempersp_memsim::MemLevel;
    use mempersp_pebs::PebsSample;

    fn trace_of(addrs: &[u64]) -> Trace {
        let mut t = Tracer::new(TracerConfig::default(), 1);
        for (i, &a) in addrs.iter().enumerate() {
            t.record_pebs(PebsSample {
                timestamp: i as u64,
                core: 0,
                ip: 0,
                addr: a,
                size: 8,
                is_store: false,
                latency: 1,
                source: MemLevel::L1,
                tlb_miss: false,
            });
        }
        t.finish("reuse")
    }

    #[test]
    fn immediate_reuse_is_distance_zero_bucket() {
        // A A → one reuse with 0 distinct lines in between.
        let tr = trace_of(&[0x0, 0x8]);
        let h = sampled_reuse_histogram(&tr, 0, 64);
        assert_eq!(h.reuses, 1);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.cold, 0);
    }

    #[test]
    fn distance_counts_distinct_lines() {
        // A B C B A: A reused with {B, C} in between (distance 2);
        // B reused with {C} (distance 1).
        let tr = trace_of(&[0x000, 0x040, 0x080, 0x040, 0x000]);
        let h = sampled_reuse_histogram(&tr, 0, 64);
        assert_eq!(h.reuses, 2);
        // distance 1 -> bucket 0; distance 2 -> bucket 1.
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.cold, 1, "line C sampled once");
    }

    #[test]
    fn streaming_has_no_reuse() {
        let addrs: Vec<u64> = (0..100).map(|i| i * 64).collect();
        let tr = trace_of(&addrs);
        let h = sampled_reuse_histogram(&tr, 0, 64);
        assert_eq!(h.reuses, 0);
        assert_eq!(h.cold, 100);
        assert!(h.typical_distance().is_none());
    }

    #[test]
    fn typical_distance_and_fraction() {
        // Repeating scan over 8 lines, 5 times: every reuse distance 7.
        let mut addrs = Vec::new();
        for _ in 0..5 {
            for l in 0..8u64 {
                addrs.push(l * 64);
            }
        }
        let tr = trace_of(&addrs);
        let h = sampled_reuse_histogram(&tr, 0, 64);
        assert_eq!(h.reuses, 32);
        assert_eq!(h.typical_distance(), Some(4), "distance 7 lands in bucket [4,8)");
        assert_eq!(h.fraction_below(8), 1.0);
        assert_eq!(h.fraction_below(4), 0.0);
    }

    #[test]
    fn other_cores_ignored() {
        let tr = trace_of(&[0x0, 0x0]);
        let h = sampled_reuse_histogram(&tr, 1, 64);
        assert_eq!(h.reuses, 0);
        assert_eq!(h.cold, 0);
    }
}
