//! Sweep-direction detection over the folded address panel.
//!
//! The figure's key reading is that the SYMGS phases traverse the
//! matrix *forward* (a1: lower→upper addresses) then *backward*
//! (a2: upper→lower). We recover that from the PEBS address samples
//! with a robust Theil–Sen slope estimate.

use mempersp_extrae::{ObjectId, Trace};
use mempersp_folding::{AddrPoint, FoldedRegion};
use serde::{Deserialize, Serialize};

/// Direction of an address sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepDirection {
    /// Addresses rise with time.
    Forward,
    /// Addresses fall with time.
    Backward,
    /// No significant linear trend.
    Flat,
}

/// Summary of one detected sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepInfo {
    pub direction: SweepDirection,
    /// Theil–Sen slope in bytes per unit of normalized time.
    pub slope: f64,
    /// Samples used.
    pub points: usize,
    /// Time extent of the samples.
    pub x_min: f64,
    pub x_max: f64,
    /// Address extent of the samples.
    pub addr_min: u64,
    pub addr_max: u64,
}

/// Robust Theil–Sen slope of `(x, y)` points: the median of pairwise
/// slopes. For large inputs a deterministic pair subsample bounds the
/// cost at ~200k pairs.
pub fn theil_sen_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len();
    if n < 2 {
        return 0.0;
    }
    let mut slopes = Vec::new();
    // Cap the number of pairs deterministically: stride over j.
    let max_pairs = 200_000usize;
    let total_pairs = n * (n - 1) / 2;
    let stride = (total_pairs / max_pairs).max(1);
    let mut k = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            k += 1;
            if !k.is_multiple_of(stride) {
                continue;
            }
            let dx = points[j].0 - points[i].0;
            if dx.abs() > 1e-12 {
                slopes.push((points[j].1 - points[i].1) / dx);
            }
        }
    }
    if slopes.is_empty() {
        return 0.0;
    }
    slopes.sort_by(|a, b| a.partial_cmp(b).expect("no NaN slopes"));
    slopes[slopes.len() / 2]
}

/// Classify a point cloud as a forward/backward/flat sweep. The trend
/// is "significant" when the fitted rise over the observed time span
/// exceeds `min_span_fraction` of the observed address span.
pub fn detect_sweep(points: &[(f64, f64)], min_span_fraction: f64) -> SweepDirection {
    if points.len() < 3 {
        return SweepDirection::Flat;
    }
    let slope = theil_sen_slope(points);
    let x_min = points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let x_max = points.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let y_min = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let y_max = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    let span_y = (y_max - y_min).max(1.0);
    let rise = slope * (x_max - x_min);
    if rise.abs() < min_span_fraction * span_y {
        SweepDirection::Flat
    } else if rise > 0.0 {
        SweepDirection::Forward
    } else {
        SweepDirection::Backward
    }
}

fn summarize(points: &[(f64, f64)]) -> SweepInfo {
    let slope = theil_sen_slope(points);
    SweepInfo {
        direction: detect_sweep(points, 0.3),
        slope,
        points: points.len(),
        x_min: points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min),
        x_max: points.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max),
        addr_min: points.iter().map(|p| p.1 as u64).min().unwrap_or(0),
        addr_max: points.iter().map(|p| p.1 as u64).max().unwrap_or(0),
    }
}

/// Filter the folded address points to loads over one object within
/// an x-window, as `(x, addr)` pairs.
pub fn object_points(
    points: &[AddrPoint],
    object: ObjectId,
    x_range: (f64, f64),
    include_stores: bool,
) -> Vec<(f64, f64)> {
    points
        .iter()
        .filter(|p| p.object == Some(object))
        .filter(|p| p.x >= x_range.0 && p.x <= x_range.1)
        .filter(|p| include_stores || !p.is_store)
        .map(|p| (p.x, p.addr as f64))
        .collect()
}

/// Split a folded SYMGS region's matrix-object samples into the
/// forward and backward sweeps using the sampled instruction pointers
/// (the two sweeps live on different source lines), and summarize
/// each. Returns `None` when either sweep has no samples.
///
/// `fwd_lines`/`bwd_lines` are inclusive line ranges within `file`;
/// `x_range` restricts the folded-time window (pass `(0.0, 1.0)` when
/// the folded region is the SYMGS itself, or one phase's extent when
/// it is the whole iteration).
pub fn symgs_sweeps(
    folded: &FoldedRegion,
    trace: &Trace,
    object: ObjectId,
    file: &str,
    fwd_lines: (u32, u32),
    bwd_lines: (u32, u32),
    x_range: (f64, f64),
) -> Option<(SweepInfo, SweepInfo)> {
    let mut fwd: Vec<(f64, f64)> = Vec::new();
    let mut bwd: Vec<(f64, f64)> = Vec::new();
    for p in &folded.pooled.addr_points {
        if p.object != Some(object) {
            continue;
        }
        if p.x < x_range.0 || p.x > x_range.1 {
            continue;
        }
        let Some(loc) = trace.source.resolve(mempersp_extrae::Ip(p.ip)) else {
            continue;
        };
        if loc.file != file {
            continue;
        }
        if (fwd_lines.0..=fwd_lines.1).contains(&loc.line) {
            fwd.push((p.x, p.addr as f64));
        } else if (bwd_lines.0..=bwd_lines.1).contains(&loc.line) {
            bwd.push((p.x, p.addr as f64));
        }
    }
    if fwd.len() < 3 || bwd.len() < 3 {
        return None;
    }
    Some((summarize(&fwd), summarize(&bwd)))
}

/// The fraction of a folded SYMGS instance spent in the forward sweep,
/// estimated as the boundary between forward-line and backward-line
/// samples (midpoint of the last forward and first backward x).
pub fn sweep_split_x(fwd: &SweepInfo, bwd: &SweepInfo) -> f64 {
    ((fwd.x_max + bwd.x_min) / 2.0).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theil_sen_exact_line() {
        let pts: Vec<(f64, f64)> = (0..100).map(|i| (i as f64 / 100.0, 5.0 * i as f64)).collect();
        assert!((theil_sen_slope(&pts) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn theil_sen_resists_outliers() {
        let mut pts: Vec<(f64, f64)> = (0..100).map(|i| (i as f64 / 100.0, i as f64)).collect();
        // 20 wild outliers.
        for i in 0..20 {
            pts[i * 5].1 = 1e9;
        }
        let slope = theil_sen_slope(&pts);
        assert!((slope - 100.0).abs() / 100.0 < 0.2, "slope {slope}");
    }

    #[test]
    fn theil_sen_degenerate() {
        assert_eq!(theil_sen_slope(&[]), 0.0);
        assert_eq!(theil_sen_slope(&[(0.5, 1.0)]), 0.0);
        assert_eq!(theil_sen_slope(&[(0.5, 1.0), (0.5, 2.0)]), 0.0, "vertical pair ignored");
    }

    #[test]
    fn detects_forward_backward_flat() {
        let fwd: Vec<(f64, f64)> = (0..50).map(|i| (i as f64 / 50.0, i as f64 * 100.0)).collect();
        let bwd: Vec<(f64, f64)> = (0..50).map(|i| (i as f64 / 50.0, (50 - i) as f64 * 100.0)).collect();
        let flat: Vec<(f64, f64)> =
            (0..50).map(|i| (i as f64 / 50.0, ((i * 37) % 50) as f64 * 100.0)).collect();
        assert_eq!(detect_sweep(&fwd, 0.3), SweepDirection::Forward);
        assert_eq!(detect_sweep(&bwd, 0.3), SweepDirection::Backward);
        assert_eq!(detect_sweep(&flat, 0.3), SweepDirection::Flat);
        assert_eq!(detect_sweep(&fwd[..2], 0.3), SweepDirection::Flat, "too few points");
    }

    #[test]
    fn split_point_between_sweeps() {
        let fwd = SweepInfo {
            direction: SweepDirection::Forward,
            slope: 1.0,
            points: 10,
            x_min: 0.0,
            x_max: 0.48,
            addr_min: 0,
            addr_max: 100,
        };
        let bwd = SweepInfo { x_min: 0.52, x_max: 1.0, ..fwd.clone() };
        assert!((sweep_split_x(&fwd, &bwd) - 0.5).abs() < 1e-12);
    }
}
