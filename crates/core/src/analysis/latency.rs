//! Access-cost distributions from the PEBS samples.
//!
//! The load-latency side of PEBS is what tools like `dmem_advisor`
//! and VTune build on (both cited by the paper); this module gives
//! the folded equivalent: latency percentiles and per-data-source
//! histograms, per object or for the whole run.

use mempersp_extrae::{ObjectId, Trace};
use mempersp_memsim::MemLevel;
use serde::{Deserialize, Serialize};

/// Latency distribution summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyProfile {
    /// Samples aggregated.
    pub samples: usize,
    pub min: u32,
    pub p50: u32,
    pub p90: u32,
    pub p99: u32,
    pub max: u32,
    pub mean: f64,
    /// Mean latency of the samples served by each level (L1/L2/L3/DRAM);
    /// `None` when no sample came from that level.
    pub mean_by_source: [Option<f64>; 4],
}

fn source_index(l: MemLevel) -> usize {
    match l {
        MemLevel::L1 => 0,
        MemLevel::L2 => 1,
        MemLevel::L3 => 2,
        MemLevel::Dram => 3,
    }
}

fn percentile(sorted: &[u32], p: f64) -> u32 {
    debug_assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Build the latency profile of PEBS load samples, optionally
/// restricted to one object and/or to stores instead of loads.
pub fn latency_profile(
    trace: &Trace,
    object: Option<ObjectId>,
    stores: bool,
) -> Option<LatencyProfile> {
    let mut lats: Vec<u32> = Vec::new();
    let mut sums = [0u64; 4];
    let mut counts = [0u64; 4];
    for (_, s, obj) in trace.pebs_events() {
        if s.is_store != stores {
            continue;
        }
        if let Some(want) = object {
            if obj != Some(want) {
                continue;
            }
        }
        lats.push(s.latency);
        let i = source_index(s.source);
        sums[i] += s.latency as u64;
        counts[i] += 1;
    }
    if lats.is_empty() {
        return None;
    }
    lats.sort_unstable();
    let mean = lats.iter().map(|&l| l as f64).sum::<f64>() / lats.len() as f64;
    let mut mean_by_source = [None; 4];
    for i in 0..4 {
        if counts[i] > 0 {
            mean_by_source[i] = Some(sums[i] as f64 / counts[i] as f64);
        }
    }
    Some(LatencyProfile {
        samples: lats.len(),
        min: lats[0],
        p50: percentile(&lats, 0.50),
        p90: percentile(&lats, 0.90),
        p99: percentile(&lats, 0.99),
        max: *lats.last().expect("non-empty"),
        mean,
        mean_by_source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_extrae::{CodeLocation, Tracer, TracerConfig};
    use mempersp_pebs::PebsSample;

    fn trace_with_latencies(lats: &[(u32, MemLevel)]) -> Trace {
        let mut t = Tracer::new(TracerConfig::default(), 1);
        let base = t.malloc(1 << 20, &CodeLocation::new("x.rs", 1, "x"), 0);
        for (i, &(lat, src)) in lats.iter().enumerate() {
            t.record_pebs(PebsSample {
                timestamp: i as u64,
                core: 0,
                ip: 0,
                addr: base + i as u64 * 8,
                size: 8,
                is_store: false,
                latency: lat,
                source: src,
                tlb_miss: false,
            });
        }
        t.finish("lat")
    }

    #[test]
    fn percentiles_and_means() {
        let lats: Vec<(u32, MemLevel)> = (1..=100).map(|i| (i, MemLevel::L2)).collect();
        let tr = trace_with_latencies(&lats);
        let p = latency_profile(&tr, None, false).unwrap();
        assert_eq!(p.samples, 100);
        assert_eq!(p.min, 1);
        assert_eq!(p.max, 100);
        // Nearest-rank on 100 samples: index round(99·0.5) = 50 → 51.
        assert_eq!(p.p50, 51);
        assert_eq!(p.p90, 90);
        assert_eq!(p.p99, 99);
        assert!((p.mean - 50.5).abs() < 1e-9);
        assert!(p.mean_by_source[1].is_some());
        assert!(p.mean_by_source[3].is_none());
    }

    #[test]
    fn per_source_means() {
        let tr = trace_with_latencies(&[
            (4, MemLevel::L1),
            (6, MemLevel::L1),
            (200, MemLevel::Dram),
        ]);
        let p = latency_profile(&tr, None, false).unwrap();
        assert_eq!(p.mean_by_source[0], Some(5.0));
        assert_eq!(p.mean_by_source[3], Some(200.0));
    }

    #[test]
    fn empty_selection_is_none() {
        let tr = trace_with_latencies(&[(4, MemLevel::L1)]);
        assert!(latency_profile(&tr, None, true).is_none(), "no store samples");
        assert!(latency_profile(&tr, Some(mempersp_extrae::ObjectId(99)), false).is_none());
    }
}
