//! Dominant data streams per computing region.
//!
//! The paper's conclusion highlights "the identification of the most
//! dominant data streams and their temporal evolution along computing
//! regions": for each detected phase of the folded iteration, which
//! data objects absorb the memory traffic, in which direction, and at
//! what cost. This module computes exactly that table from the folded
//! address samples.

use crate::analysis::phases::Phase;
use crate::analysis::sweeps::{detect_sweep, SweepDirection};
use mempersp_extrae::{ObjectId, Trace};
use mempersp_folding::FoldedRegion;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One object's activity within one phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamActivity {
    /// `None` = unresolved addresses.
    pub object: Option<ObjectId>,
    pub object_name: String,
    pub loads: u64,
    pub stores: u64,
    /// Mean sampled latency of the phase's accesses to this object.
    pub mean_latency: f64,
    /// Traversal direction of the samples within the phase.
    pub direction: SweepDirection,
}

impl StreamActivity {
    pub fn total(&self) -> u64 {
        self.loads + self.stores
    }
}

/// All streams of one phase, dominant (most-sampled) first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseStreams {
    pub phase: Phase,
    pub streams: Vec<StreamActivity>,
}

impl PhaseStreams {
    /// The dominant stream of the phase (most samples), if any.
    pub fn dominant(&self) -> Option<&StreamActivity> {
        self.streams.first()
    }
}

/// Compute the per-phase stream table from the folded address panel.
pub fn phase_streams(folded: &FoldedRegion, trace: &Trace, phases: &[Phase]) -> Vec<PhaseStreams> {
    phases
        .iter()
        .map(|phase| {
            struct Acc {
                loads: u64,
                stores: u64,
                lat: u64,
                points: Vec<(f64, f64)>,
            }
            let mut by_obj: BTreeMap<Option<u32>, Acc> = BTreeMap::new();
            for p in &folded.pooled.addr_points {
                if p.x < phase.x_start || p.x > phase.x_end {
                    continue;
                }
                let acc = by_obj.entry(p.object.map(|o| o.0)).or_insert(Acc {
                    loads: 0,
                    stores: 0,
                    lat: 0,
                    points: Vec::new(),
                });
                if p.is_store {
                    acc.stores += 1;
                } else {
                    acc.loads += 1;
                }
                acc.lat += p.latency as u64;
                acc.points.push((p.x, p.addr as f64));
            }
            let mut streams: Vec<StreamActivity> = by_obj
                .into_iter()
                .map(|(key, acc)| {
                    let (object, object_name) = match key {
                        Some(raw) => (
                            Some(ObjectId(raw)),
                            trace
                                .objects
                                .get(ObjectId(raw))
                                .map(|o| o.name.clone())
                                .unwrap_or_else(|| format!("<object {raw}>")),
                        ),
                        None => (None, "<unresolved>".to_string()),
                    };
                    let total = acc.loads + acc.stores;
                    StreamActivity {
                        object,
                        object_name,
                        loads: acc.loads,
                        stores: acc.stores,
                        mean_latency: if total == 0 {
                            0.0
                        } else {
                            acc.lat as f64 / total as f64
                        },
                        direction: detect_sweep(&acc.points, 0.3),
                    }
                })
                .collect();
            streams.sort_by_key(|s| std::cmp::Reverse(s.total()));
            PhaseStreams { phase: phase.clone(), streams }
        })
        .collect()
}

/// Render the stream table as text (one block per phase).
pub fn streams_report(tables: &[PhaseStreams]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for t in tables {
        let _ = writeln!(
            out,
            "phase {} ({}) x=[{:.3},{:.3}]:",
            t.phase.label, t.phase.region, t.phase.x_start, t.phase.x_end
        );
        for s in t.streams.iter().take(4) {
            let _ = writeln!(
                out,
                "  {:<44} {:>6} loads {:>6} stores  lat {:>6.1}  {:?}",
                s.object_name, s.loads, s.stores, s.mean_latency, s.direction
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_folding::{AddrPoint, FoldedCounter, MonotoneCurve, PooledSamples};
    use mempersp_memsim::MemLevel;
    use mempersp_pebs::EventKind;

    #[allow(clippy::field_reassign_with_default)]
    fn folded_with(points: Vec<AddrPoint>) -> FoldedRegion {
        let mut pooled = PooledSamples::default();
        pooled.addr_points = points;
        FoldedRegion {
            region: "it".into(),
            instances_used: 1,
            instances_rejected: 0,
            avg_duration_cycles: 1e6,
            freq_mhz: 1000,
            counters: EventKind::ALL
                .iter()
                .map(|&kind| FoldedCounter {
                    kind,
                    curve: MonotoneCurve::identity(),
                    avg_total: 0.0,
                    points: 0,
                })
                .collect(),
            pooled,
        }
    }

    fn pt(x: f64, addr: u64, obj: Option<u32>, is_store: bool, lat: u32) -> AddrPoint {
        AddrPoint {
            x,
            addr,
            ip: 0,
            is_store,
            latency: lat,
            source: MemLevel::L2,
            object: obj.map(ObjectId),
            instance: 0,
        }
    }

    fn trace_with_object() -> Trace {
        let mut t = mempersp_extrae::Tracer::new(mempersp_extrae::TracerConfig::default(), 1);
        t.register_static("matrix", 0, 1 << 20);
        t.finish("streams")
    }

    #[test]
    fn dominant_stream_and_direction_per_phase() {
        let trace = trace_with_object();
        // Phase A [0, 0.5): object 0 forward ramp (30 samples) + noise.
        let mut points = Vec::new();
        for i in 0..30 {
            let x = 0.01 + 0.48 * i as f64 / 30.0;
            points.push(pt(x, 1000 + i * 1000, Some(0), false, 40));
        }
        points.push(pt(0.2, 0xdead, None, true, 4));
        // Phase B [0.5, 1.0]: backward ramp on object 0.
        for i in 0..20 {
            let x = 0.51 + 0.48 * i as f64 / 20.0;
            points.push(pt(x, 30_000 - i * 1000, Some(0), false, 10));
        }
        let folded = folded_with(points);
        let phases = vec![
            Phase { label: "A".into(), region: "r".into(), x_start: 0.0, x_end: 0.5 },
            Phase { label: "B".into(), region: "r".into(), x_start: 0.5, x_end: 1.0 },
        ];
        let tables = phase_streams(&folded, &trace, &phases);
        assert_eq!(tables.len(), 2);
        let a = tables[0].dominant().unwrap();
        assert_eq!(a.object_name, "matrix");
        assert_eq!(a.loads, 30);
        assert_eq!(a.direction, SweepDirection::Forward);
        assert!((a.mean_latency - 40.0).abs() < 1e-9);
        // The unresolved store shows up as a secondary stream.
        assert_eq!(tables[0].streams.len(), 2);
        assert_eq!(tables[0].streams[1].object, None);
        let b = tables[1].dominant().unwrap();
        assert_eq!(b.direction, SweepDirection::Backward);
    }

    #[test]
    fn empty_phase_has_no_streams() {
        let trace = trace_with_object();
        let folded = folded_with(vec![pt(0.9, 100, Some(0), false, 5)]);
        let phases =
            vec![Phase { label: "A".into(), region: "r".into(), x_start: 0.0, x_end: 0.5 }];
        let tables = phase_streams(&folded, &trace, &phases);
        assert!(tables[0].streams.is_empty());
        assert!(tables[0].dominant().is_none());
    }

    #[test]
    fn report_renders_all_phases() {
        let trace = trace_with_object();
        let folded = folded_with(vec![pt(0.25, 100, Some(0), false, 5)]);
        let phases =
            vec![Phase { label: "A".into(), region: "r".into(), x_start: 0.0, x_end: 0.5 }];
        let text = streams_report(&phase_streams(&folded, &trace, &phases));
        assert!(text.contains("phase A"));
        assert!(text.contains("matrix"));
    }
}
