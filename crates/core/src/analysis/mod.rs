//! Analyses over traces and folded regions: everything the analyst
//! reads off the paper's Fig. 1.

pub mod bandwidth;
pub mod cpi;
pub mod latency;
pub mod objects;
pub mod phases;
pub mod profile;
pub mod reuse;
pub mod streams;
pub mod sweeps;
