//! Per-iteration phase detection: the figure's A–E labels.
//!
//! Within one CG iteration the paper identifies:
//!
//! * **A** — the first `ComputeSYMGS_ref` call (fine-level pre-smooth),
//! * **B** — the first `ComputeSPMV_ref` call (fine residual),
//! * **C** — the coarse-grid work in between (restriction, recursive
//!   MG, prolongation — everything between B's end and D's start),
//! * **D** — the last `ComputeSYMGS_ref` call (fine post-smooth),
//! * **E** — the last `ComputeSPMV_ref` call (the CG `A·p`).
//!
//! Boundaries are averaged over all kept iteration instances and
//! expressed in the folded (normalized) time of the iteration.

use mempersp_extrae::Trace;
use serde::{Deserialize, Serialize};

/// One detected phase in folded iteration time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// The figure's label (A–E).
    pub label: String,
    /// Region the phase corresponds to ("(coarse MG)" for C).
    pub region: String,
    /// Mean normalized start within the iteration.
    pub x_start: f64,
    /// Mean normalized end within the iteration.
    pub x_end: f64,
}

impl Phase {
    /// Fraction of the iteration this phase occupies.
    pub fn fraction(&self) -> f64 {
        self.x_end - self.x_start
    }

    /// Split the phase at an interior fraction (used to separate the
    /// forward/backward sweeps of a SYMGS phase).
    pub fn split(&self, frac: f64, first_label: &str, second_label: &str) -> (Phase, Phase) {
        assert!((0.0..=1.0).contains(&frac));
        let mid = self.x_start + frac * (self.x_end - self.x_start);
        (
            Phase {
                label: first_label.to_string(),
                region: self.region.clone(),
                x_start: self.x_start,
                x_end: mid,
            },
            Phase {
                label: second_label.to_string(),
                region: self.region.clone(),
                x_start: mid,
                x_end: self.x_end,
            },
        )
    }
}

/// Sub-instances of `region` fully contained in `[s, e]` on `core`.
fn nested_instances(trace: &Trace, region: &str, core: usize, s: u64, e: u64) -> Vec<(u64, u64)> {
    let Some(id) = trace.region_id(region) else {
        return Vec::new();
    };
    trace
        .region_instances(id, core)
        .into_iter()
        .filter(|&(a, b)| a >= s && b <= e)
        .collect()
}

/// Detect the A–E phases of the `iteration_region` on `core`,
/// averaged over all its instances. Returns an empty vector when the
/// iteration or sub-regions are missing.
pub fn iteration_phases(
    trace: &Trace,
    iteration_region: &str,
    symgs_region: &str,
    spmv_region: &str,
    core: usize,
) -> Vec<Phase> {
    let Some(iter_id) = trace.region_id(iteration_region) else {
        return Vec::new();
    };
    let iterations = trace.region_instances(iter_id, core);
    if iterations.is_empty() {
        return Vec::new();
    }

    // Accumulate normalized boundaries across iterations.
    let mut acc: Vec<(f64, f64)> = vec![(0.0, 0.0); 5]; // A..E
    let mut used = 0usize;
    for &(s, e) in &iterations {
        let dur = (e - s) as f64;
        if dur <= 0.0 {
            continue;
        }
        let symgs = nested_instances(trace, symgs_region, core, s, e);
        let spmv = nested_instances(trace, spmv_region, core, s, e);
        if symgs.len() < 2 || spmv.len() < 2 {
            continue;
        }
        let norm = |t: u64| (t - s) as f64 / dur;
        let a = symgs.first().expect("len >= 2");
        let d = symgs.last().expect("len >= 2");
        let b = spmv.first().expect("len >= 2");
        let ee = spmv.last().expect("len >= 2");
        let bounds = [
            (norm(a.0), norm(a.1)),
            (norm(b.0), norm(b.1)),
            (norm(b.1), norm(d.0)), // C: coarse work between B and D
            (norm(d.0), norm(d.1)),
            (norm(ee.0), norm(ee.1)),
        ];
        for (acc, b) in acc.iter_mut().zip(bounds) {
            acc.0 += b.0;
            acc.1 += b.1;
        }
        used += 1;
    }
    if used == 0 {
        return Vec::new();
    }
    let labels = ["A", "B", "C", "D", "E"];
    let regions = [
        symgs_region,
        spmv_region,
        "(coarse MG)",
        symgs_region,
        spmv_region,
    ];
    labels
        .iter()
        .zip(regions)
        .zip(acc)
        .map(|((label, region), (s, e))| Phase {
            label: label.to_string(),
            region: region.to_string(),
            x_start: s / used as f64,
            x_end: e / used as f64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_extrae::{Tracer, TracerConfig};
    use mempersp_pebs::CounterSnapshot;

    /// Synthesize a trace shaped like one HPCG iteration:
    /// SYMGS [0,20], SPMV [20,30], coarse [30,60], SYMGS [60,80],
    /// SPMV [80,100], twice.
    fn synthetic() -> Trace {
        let mut t = Tracer::new(TracerConfig::default(), 1);
        let c = CounterSnapshot::default();
        for it in 0..2u64 {
            let o = it * 110;
            t.enter(0, "CG_iteration", c, o);
            t.enter(0, "SYMGS", c, o);
            t.exit(0, "SYMGS", c, o + 20);
            t.enter(0, "SPMV", c, o + 20);
            t.exit(0, "SPMV", c, o + 30);
            // Coarse work: nested SYMGS + SPMV inside [30,60].
            t.enter(0, "SYMGS", c, o + 32);
            t.exit(0, "SYMGS", c, o + 40);
            t.enter(0, "SPMV", c, o + 42);
            t.exit(0, "SPMV", c, o + 48);
            t.enter(0, "SYMGS", c, o + 60);
            t.exit(0, "SYMGS", c, o + 80);
            t.enter(0, "SPMV", c, o + 80);
            t.exit(0, "SPMV", c, o + 100);
            t.exit(0, "CG_iteration", c, o + 100);
        }
        t.finish("synthetic")
    }

    #[test]
    fn detects_five_phases_in_order() {
        let tr = synthetic();
        let phases = iteration_phases(&tr, "CG_iteration", "SYMGS", "SPMV", 0);
        assert_eq!(phases.len(), 5);
        let labels: Vec<&str> = phases.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["A", "B", "C", "D", "E"]);
        assert!((phases[0].x_start - 0.0).abs() < 1e-9);
        assert!((phases[0].x_end - 0.2).abs() < 1e-9);
        assert!((phases[1].x_end - 0.3).abs() < 1e-9);
        assert!((phases[2].x_start - 0.3).abs() < 1e-9, "C starts at B's end");
        assert!((phases[2].x_end - 0.6).abs() < 1e-9, "C ends at D's start");
        assert!((phases[3].x_end - 0.8).abs() < 1e-9);
        assert!((phases[4].x_end - 1.0).abs() < 1e-9);
        // Coarse-level SYMGS/SPMV must not be picked as A/B/D/E.
        assert!((phases[3].x_start - 0.6).abs() < 1e-9);
    }

    #[test]
    fn missing_region_yields_empty() {
        let tr = synthetic();
        assert!(iteration_phases(&tr, "NOPE", "SYMGS", "SPMV", 0).is_empty());
        assert!(iteration_phases(&tr, "CG_iteration", "NOPE", "SPMV", 0).is_empty());
    }

    #[test]
    fn phase_split() {
        let p = Phase { label: "A".into(), region: "SYMGS".into(), x_start: 0.2, x_end: 0.6 };
        let (a1, a2) = p.split(0.5, "a1", "a2");
        assert_eq!(a1.x_start, 0.2);
        assert!((a1.x_end - 0.4).abs() < 1e-12);
        assert!((a2.x_start - 0.4).abs() < 1e-12);
        assert_eq!(a2.x_end, 0.6);
        assert!((p.fraction() - 0.4).abs() < 1e-12);
    }
}
