//! ASCII renderings of the folded panels for terminal inspection —
//! a quick look at the figure without leaving the shell.

use mempersp_folding::FoldedRegion;
use mempersp_pebs::EventKind;
use std::fmt::Write as _;

/// Render the folded address panel as a `width × height` scatter:
/// `.` for loads, `#` for stores, `@` where both fall in a cell.
/// Rows are address bins (highest address on top, like the figure);
/// columns are folded-time bins.
///
/// The sampled address space is first split into contiguous **bands**
/// (clusters separated by gaps larger than 16× the band contents —
/// e.g. the heap arena vs the far-away mmap zone), each band gets rows
/// proportional to its extent, and bands are divided by `~` rulers;
/// without banding, a distant mmap allocation would squash everything
/// else into single rows.
pub fn address_panel(folded: &FoldedRegion, width: usize, height: usize) -> String {
    assert!(width >= 2 && height >= 2);
    let pts = &folded.pooled.addr_points;
    if pts.is_empty() {
        return "(no address samples)\n".to_string();
    }

    // ---- band detection over the sampled addresses ----------------
    let mut addrs: Vec<u64> = pts.iter().map(|p| p.addr).collect();
    addrs.sort_unstable();
    addrs.dedup();
    let total_content: u64 = addrs.last().unwrap() - addrs[0];
    let gap_threshold = (total_content / 8).max(1 << 20);
    let mut bands: Vec<(u64, u64)> = Vec::new(); // inclusive (lo, hi)
    let mut lo = addrs[0];
    let mut prev = addrs[0];
    for &a in &addrs[1..] {
        if a - prev > gap_threshold {
            bands.push((lo, prev));
            lo = a;
        }
        prev = a;
    }
    bands.push((lo, prev));

    // ---- row allocation: proportional to band extent, ≥2 each ------
    let rulers = bands.len().saturating_sub(1);
    let usable = height.max(2 * bands.len() + rulers) - rulers;
    let extents: Vec<u64> = bands.iter().map(|&(l, h)| (h - l).max(1)).collect();
    let total_extent: u64 = extents.iter().sum();
    let mut rows: Vec<usize> = extents
        .iter()
        .map(|&e| ((e as f64 / total_extent as f64) * usable as f64).round() as usize)
        .map(|r| r.max(2))
        .collect();
    // Trim overshoot from the largest bands.
    while rows.iter().sum::<usize>() > usable {
        let i = rows
            .iter()
            .enumerate()
            .max_by_key(|(_, &r)| r)
            .map(|(i, _)| i)
            .expect("non-empty");
        if rows[i] <= 2 {
            break;
        }
        rows[i] -= 1;
    }

    // ---- draw, top band = highest addresses --------------------------
    let mut out = String::new();
    let _ = writeln!(
        out,
        "addresses (top=high); {} band(s); '.'=load '#'=store '@'=both",
        bands.len()
    );
    for (bi, &(b_lo, b_hi)) in bands.iter().enumerate().rev() {
        let h = rows[bi];
        let span = (b_hi - b_lo).max(1) as f64;
        let mut grid = vec![vec![b' '; width]; h];
        for p in pts {
            if p.addr < b_lo || p.addr > b_hi {
                continue;
            }
            let col = ((p.x * width as f64) as usize).min(width - 1);
            let row_from_bottom =
                (((p.addr - b_lo) as f64 / span) * (h - 1) as f64) as usize;
            let row = h - 1 - row_from_bottom.min(h - 1);
            let cell = &mut grid[row][col];
            let mark = if p.is_store { b'#' } else { b'.' };
            *cell = match (*cell, mark) {
                (b' ', m) => m,
                (b'.', b'#') | (b'#', b'.') => b'@',
                (c, _) => c,
            };
        }
        let _ = writeln!(out, "  0x{b_hi:x}");
        for row in grid {
            out.push('|');
            out.push_str(std::str::from_utf8(&row).expect("ascii"));
            out.push_str("|\n");
        }
        let _ = writeln!(out, "  0x{b_lo:x}");
        if bi > 0 {
            let _ = writeln!(out, "~{}~ (gap)", "~".repeat(width.saturating_sub(8)));
        }
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push_str("+\n");
    let _ = writeln!(out, " 0.0{}1.0 (folded time)", " ".repeat(width.saturating_sub(6)));
    out
}

/// Render the folded source-line panel (the figure's top panel): one
/// row per sampled `file:line`, ordered by file then line (top =
/// first), with `*` marks where samples fall in folded time.
pub fn lines_panel(folded: &FoldedRegion, width: usize, max_rows: usize) -> String {
    assert!(width >= 2);
    let pts = &folded.pooled.line_points;
    if pts.is_empty() {
        return "(no line samples)\n".to_string();
    }
    // Collect distinct lines with sample counts; file names stay
    // borrowed from the pooled string table (no per-sample clone).
    let mut by_line: std::collections::BTreeMap<(&str, u32), Vec<f64>> =
        std::collections::BTreeMap::new();
    for p in pts {
        let key = (p.file_name(&folded.pooled).unwrap_or("?"), p.line.unwrap_or(0));
        by_line.entry(key).or_default().push(p.x);
    }
    // Keep the busiest rows if there are too many.
    let mut keys: Vec<((&str, u32), usize)> =
        by_line.iter().map(|(k, v)| (*k, v.len())).collect();
    if keys.len() > max_rows {
        keys.sort_by_key(|k| std::cmp::Reverse(k.1));
        keys.truncate(max_rows);
        keys.sort_by(|a, b| a.0.cmp(&b.0));
    }
    let label_width = keys
        .iter()
        .map(|((f, l), _)| format!("{f}:{l}").len())
        .max()
        .unwrap_or(8)
        .min(36);
    let mut out = String::new();
    let _ = writeln!(out, "code lines (top panel); '*' = sample");
    for ((file, line), _) in &keys {
        let mut row = vec![b' '; width];
        for &x in &by_line[&(*file, *line)] {
            let col = ((x * width as f64) as usize).min(width - 1);
            row[col] = b'*';
        }
        let label = format!("{file}:{line}");
        let label = if label.len() > label_width { &label[label.len() - label_width..] } else { &label };
        let _ = writeln!(
            out,
            "{label:>label_width$} |{}|",
            std::str::from_utf8(&row).expect("ascii")
        );
    }
    let _ = writeln!(
        out,
        "{:>label_width$}  0.0{}1.0 (folded time)",
        "",
        " ".repeat(width.saturating_sub(6))
    );
    out
}

/// Render a counter's instantaneous rate (or MIPS) as a one-line
/// sparkline over folded time.
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: &[char] = &['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|v| {
            let idx = (((v - lo) / span) * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[idx.min(LEVELS.len() - 1)]
        })
        .collect()
}

/// A compact textual summary of the folded performance panel: MIPS
/// sparkline plus per-instruction miss-rate sparklines, like the
/// figure's bottom panel.
pub fn performance_panel(folded: &FoldedRegion, width: usize) -> String {
    let series = folded.performance_series(width.max(2));
    let mips: Vec<f64> = series.iter().map(|p| p.mips).collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "MIPS     [{}] mean {:.0}",
        sparkline(&mips),
        folded.mean_mips()
    );
    for kind in [EventKind::Branches, EventKind::L1dMiss, EventKind::L2Miss, EventKind::L3Miss] {
        let vals: Vec<f64> = series.iter().map(|p| p.per_instruction[kind.index()]).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let _ = writeln!(out, "{:<8} [{}] mean {:.4}/inst", kind.label(), sparkline(&vals), mean);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempersp_folding::{AddrPoint, FoldedCounter, MonotoneCurve, PooledSamples};
    use mempersp_memsim::MemLevel;

    #[allow(clippy::field_reassign_with_default)]
    fn folded_with_points(points: Vec<AddrPoint>) -> FoldedRegion {
        let mut pooled = PooledSamples::default();
        pooled.addr_points = points;
        FoldedRegion {
            region: "it".into(),
            instances_used: 1,
            instances_rejected: 0,
            avg_duration_cycles: 1e6,
            freq_mhz: 1000,
            counters: EventKind::ALL
                .iter()
                .map(|&kind| FoldedCounter {
                    kind,
                    curve: MonotoneCurve::identity(),
                    avg_total: 10.0,
                    points: 0,
                })
                .collect(),
            pooled,
        }
    }

    fn pt(x: f64, addr: u64, is_store: bool) -> AddrPoint {
        AddrPoint {
            x,
            addr,
            ip: 0,
            is_store,
            latency: 1,
            source: MemLevel::L1,
            object: None,
            instance: 0,
        }
    }

    #[test]
    fn address_panel_places_marks() {
        let f = folded_with_points(vec![pt(0.0, 0, false), pt(1.0, 1000, true)]);
        let s = address_panel(&f, 10, 5);
        assert!(s.contains('.'), "load mark present");
        assert!(s.contains('#'), "store mark present");
        // Load at (x=0, lowest addr) → bottom-left; store top-right.
        let rows: Vec<&str> = s.lines().filter(|l| l.starts_with('|')).collect();
        assert_eq!(rows.len(), 5);
        // Store at (x=1, highest addr) → top row, last column (col 9 →
        // string index 10 behind the border).
        assert_eq!(&rows[0][10..11], "#");
        assert_eq!(&rows[4][1..2], ".", "load at (x=0, lowest addr) → bottom-left");
    }

    #[test]
    fn overlapping_load_store_is_at() {
        let f = folded_with_points(vec![pt(0.5, 500, false), pt(0.5, 500, true)]);
        let s = address_panel(&f, 8, 4);
        assert!(s.contains('@'));
    }

    #[test]
    fn empty_panel_is_graceful() {
        let f = folded_with_points(vec![]);
        assert!(address_panel(&f, 8, 4).contains("no address samples"));
    }

    #[test]
    fn sparkline_range() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn lines_panel_rows_and_marks() {
        use mempersp_folding::LinePoint;
        let mut f = folded_with_points(vec![]);
        let a = f.pooled.intern_file("a.cpp");
        let b = f.pooled.intern_file("b.cpp");
        f.pooled.line_points = vec![
            LinePoint { x: 0.1, ip: 1, file: Some(a), line: Some(10) },
            LinePoint { x: 0.9, ip: 1, file: Some(a), line: Some(10) },
            LinePoint { x: 0.5, ip: 2, file: Some(b), line: Some(20) },
        ];
        let s = lines_panel(&f, 20, 10);
        assert!(s.contains("a.cpp:10"));
        assert!(s.contains("b.cpp:20"));
        let a_row = s.lines().find(|l| l.contains("a.cpp:10")).unwrap();
        assert_eq!(a_row.matches('*').count(), 2);
    }

    #[test]
    fn lines_panel_truncates_to_busiest() {
        use mempersp_folding::LinePoint;
        let mut f = folded_with_points(vec![]);
        let fcpp = f.pooled.intern_file("f.cpp");
        for i in 0..20u32 {
            // line 0 gets many samples, others one each.
            let reps = if i == 0 { 10 } else { 1 };
            for r in 0..reps {
                f.pooled.line_points.push(LinePoint {
                    x: (r as f64) / 10.0,
                    ip: i as u64,
                    file: Some(fcpp),
                    line: Some(i),
                });
            }
        }
        let s = lines_panel(&f, 20, 5);
        let rows = s.lines().filter(|l| l.contains("f.cpp:")).count();
        assert_eq!(rows, 5);
        assert!(s.contains("f.cpp:0"), "busiest line kept");
    }

    #[test]
    fn empty_lines_panel_graceful() {
        let f = folded_with_points(vec![]);
        assert!(lines_panel(&f, 10, 5).contains("no line samples"));
    }

    #[test]
    fn performance_panel_mentions_counters() {
        let f = folded_with_points(vec![]);
        let s = performance_panel(&f, 20);
        assert!(s.contains("MIPS"));
        assert!(s.contains("L3 miss"));
    }
}
