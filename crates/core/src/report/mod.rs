//! Report emission: the paper's three-panel figure as CSV + gnuplot
//! and as ASCII art for terminal inspection.

pub mod ascii;
pub mod figure;
