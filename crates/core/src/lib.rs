//! # mempersp-core — the complete work-flow
//!
//! This crate assembles the suite into the paper's tool-chain:
//!
//! * [`Machine`] — the simulated node: per-core clocks and PMUs, the
//!   cache hierarchy, PEBS multiplexing and the Extrae tracer behind
//!   one [`mempersp_extrae::AppContext`] implementation. Running a
//!   workload yields a [`RunReport`] with the trace and the hardware
//!   statistics.
//! * [`analysis`] — what the analyst does with the folded data:
//!   per-iteration phase detection (the figure's A–E labels),
//!   sweep-direction detection over the address panel (forward a1 /
//!   backward a2), per-phase traversal bandwidths, and per-object
//!   access statistics.
//! * [`report`] — emission of the three-panel figure as CSV + gnuplot
//!   and as a self-contained ASCII rendering.

pub mod analysis;
pub mod machine;
pub mod report;
pub mod workflow;

pub use analysis::bandwidth::{phase_bandwidths, PhaseBandwidth};
pub use analysis::cpi::{cpi_stack_at, cpi_stack_mean, cpi_stack_window, CpiStack};
pub use analysis::latency::{latency_profile, LatencyProfile};
pub use analysis::reuse::{sampled_reuse_histogram, ReuseHistogram};
pub use analysis::streams::{phase_streams, streams_report, PhaseStreams, StreamActivity};
pub use analysis::objects::{object_stats, ObjectStat};
pub use analysis::phases::{iteration_phases, Phase};
pub use analysis::profile::{flat_profile, ProfileRow};
pub use analysis::sweeps::{detect_sweep, symgs_sweeps, theil_sen_slope, SweepDirection, SweepInfo};
pub use machine::{Machine, MachineConfig, PebsCoreSelect, RunReport, DEFAULT_EPOCH_CAP};
pub use workflow::{
    analyze_hpcg, run_streaming_to_path, sink_for_path, HpcgAnalysis, StreamOptions,
};
