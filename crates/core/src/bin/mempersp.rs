//! `mempersp` — the command-line front end of the suite.
//!
//! ```text
//! mempersp run  --workload hpcg --nx 16 --iters 6 --cores 2 -o trace.prv
//! mempersp run  --workload stream|stencil|chase|matmul -o trace.prv
//! mempersp info trace.prv
//! mempersp objects trace.prv
//! mempersp fold trace.prv --region CG_iteration [--csv-dir target/fig1]
//! mempersp fold trace.mps --regions all --threads 4 [--stats]
//! mempersp fold trace.mps --regions CG_iteration,ComputeSYMGS_ref
//! mempersp convert trace.prv -o trace.mps   # and back: trace.mps -o out.prv
//! mempersp query trace.mps --time 0:100000 --kinds PEBS --stats
//! ```
//!
//! Mirrors the real tool-chain: Extrae writes a trace; the Folding
//! tool consumes it post-mortem. Every analysis subcommand accepts
//! either the text `.prv` trace or the chunked binary `.mps` store
//! (formats are sniffed, not guessed from the extension); on a store,
//! selective analyses decode only the chunks their predicates touch.
//!
//! Durability verbs: `mempersp fsck <trace>` verifies every checksum
//! of a v3 store and prints a damage map; `mempersp recover <in> -o
//! <out>` salvages the readable chunks of a damaged (or torn `.tmp`)
//! store into a clean one.
//!
//! Exit codes: 0 success/clean, 1 usage or IO error, 2 corruption
//! detected.

use mempersp_core::analysis::latency::latency_profile;
use mempersp_core::analysis::objects::object_stats_source;
use mempersp_core::analysis::phases::iteration_phases;
use mempersp_core::analysis::reuse::sampled_reuse_histogram;
use mempersp_core::report::{ascii, figure};
use mempersp_core::{run_streaming_to_path, MachineConfig, StreamOptions};
use mempersp_extrae::query::{EventClass, Query};
use mempersp_extrae::trace_format::{event_record, save_trace};
use mempersp_extrae::trace_source::{ScanStats, TraceSource};
use mempersp_extrae::{Trace, Workload};
use mempersp_folding::{fold_region_source, fold_regions_source, FoldingConfig, RegionRequest};
use mempersp_hpcg::{HpcgConfig, HpcgWorkload};
use mempersp_store::{open_trace_source, MpsSource, RecoveryMode, SHARD_DIR_SUFFIX};
use mempersp_workloads::{PointerChase, Stencil7, StreamTriad, TiledMatmul};
use std::process::exit;

/// Exit code for corruption detected in a trace store (usage and
/// plain IO errors exit 1, success 0).
const EXIT_CORRUPT: i32 = 2;

fn usage() -> ! {
    eprintln!(
        "usage:\n  mempersp run --workload <hpcg|stream|stencil|chase|matmul> \
         [--nx N] [--iters N] [--cores N] [--threads N|auto] [--no-group] [--haswell] \
         [--shard-events N] [--max-inflight N] [--force] -o|--out <trace.prv|.mps|.mps.d>\n  \
         mempersp info <trace>\n  mempersp objects <trace>\n  \
         mempersp fold <trace> --region <name> [--csv-dir <dir>] [--stats]\n  \
         mempersp fold <trace> --regions <a,b,...|all> [--threads N|auto] [--csv-dir <dir>] [--stats]\n  \
         mempersp export <trace> [--dir <dir>] [--prefix <name>]\n  \
         mempersp profile <trace>\n  \
         mempersp convert <trace> -o <out.prv|out.mps|out.mps.d> \
         [--format v3|v4] [--shard-events N] [--threads N|auto] [--force]\n  \
         mempersp query <trace> [--time lo:hi] [--cores 0,2] [--kinds ENTER,PEBS] \
         [--object N] [--threads N|auto] [--print N] [--json] [--stats] [--no-verify]\n  \
         mempersp serve --root <repo-dir> [--addr host:port] [--max-inflight N] \
         [--timeout-ms N] [--workers N] [--memo-cap N]\n  \
         mempersp fsck <trace.mps|trace.mps.d|trace.mps.tmp>\n  \
         mempersp recover <damaged.mps|.mps.d|.mps.tmp> -o <out.mps> [--force]\n\
         \n  <trace> may be a text .prv trace or a binary .mps store.\n  \
         `run` streams events to the output as it simulates; the format \
         follows the suffix.\n  \
         exit codes: 0 success/clean, 1 usage or IO error, 2 corruption detected."
    );
    exit(1);
}

/// Report a failure and exit with the right code: corruption
/// (`InvalidData` — bad checksum, truncation, torn file) exits 2 so
/// scripts can tell "the store is damaged" from plain IO trouble (1).
fn die(context: &str, e: &std::io::Error) -> ! {
    eprintln!("{context}: {e}");
    exit(if e.kind() == std::io::ErrorKind::InvalidData { EXIT_CORRUPT } else { 1 });
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

/// `--threads`: a worker count, or `auto` to use every host CPU.
fn threads_arg(args: &[String]) -> usize {
    match arg_value(args, "--threads") {
        None => 1,
        Some(v) if v == "auto" => std::thread::available_parallelism().map_or(1, |n| n.get()),
        Some(v) => v
            .parse::<usize>()
            .unwrap_or_else(|_| {
                eprintln!("--threads expects a count or `auto`, got {v:?}");
                exit(1);
            })
            .max(1),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("objects") => cmd_objects(&args[1..]),
        Some("fold") => cmd_fold(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("fsck") => cmd_fsck(&args[1..]),
        Some("recover") => cmd_recover(&args[1..]),
        _ => usage(),
    }
}

/// Verify every checksum of a store (single file, shard directory or
/// a torn `.tmp`), print the damage map, and exit 2 if anything is
/// wrong.
fn cmd_fsck(args: &[String]) {
    let path = trace_path(args);
    let report = mempersp_store::fsck_store(std::path::Path::new(path))
        .unwrap_or_else(|e| die(&format!("fsck {path}"), &e));
    println!(
        "{}: format v{}, {} shard{}, {} chunks, {} events",
        path,
        report.format_version,
        report.shards,
        if report.shards == 1 { "" } else { "s" },
        report.chunks,
        report.events
    );
    if !report.header_intact {
        println!("header: LOST (salvage will synthesize one)");
    }
    if report.is_clean() {
        if report.format_version >= 3 {
            println!("clean: every frame, payload, header and index checksum verified");
        } else {
            println!(
                "clean: structure and payloads decode (pre-v3 store, no checksums to verify)"
            );
        }
        return;
    }
    println!("damage ({} finding{}):", report.damage.len(), if report.damage.len() == 1 { "" } else { "s" });
    for d in &report.damage {
        println!("  {d}");
    }
    exit(EXIT_CORRUPT);
}

/// Salvage the readable chunks of a damaged store into a fresh,
/// fully-checksummed v3 store.
fn cmd_recover(args: &[String]) {
    let input = trace_path(args).clone();
    let out = arg_value(args, "-o").or_else(|| arg_value(args, "--out")).unwrap_or_else(|| usage());
    let force = args.iter().any(|a| a == "--force");
    let out_path = std::path::Path::new(&out);
    if let Err(e) = mempersp_store::check_clobber(out_path, force) {
        eprintln!("recover: {e}");
        exit(1);
    }
    let report = mempersp_store::recover_store(std::path::Path::new(&input), out_path)
        .unwrap_or_else(|e| die(&format!("recover {input}"), &e));
    eprintln!(
        "recovered {} events from {} chunks into {out}{}",
        report.events,
        report.chunks,
        if report.header_intact { "" } else { " (header lost; synthesized a minimal one)" }
    );
    if !report.damage.is_empty() {
        let n = report.damage.len();
        eprintln!("input damage ({n} finding{}):", if n == 1 { "" } else { "s" });
        for d in &report.damage {
            eprintln!("  {d}");
        }
    }
}

/// Flat sampling profile.
fn cmd_profile(args: &[String]) {
    let t = load(args);
    let (rows, total) = mempersp_core::analysis::profile::flat_profile(&t);
    println!("{total} timer samples");
    println!("{:<28} {:>8} {:>7} {:>9}", "region", "self", "self%", "inclusive");
    for r in rows {
        println!(
            "{:<28} {:>8} {:>6.1}% {:>9}",
            r.region,
            r.self_samples,
            100.0 * r.self_fraction(total),
            r.inclusive_samples
        );
    }
}

/// Export a trace to the Paraver `.prv/.pcf/.row` triple.
fn cmd_export(args: &[String]) {
    let t = load(args);
    let dir = arg_value(args, "--dir").unwrap_or_else(|| "paraver".into());
    let prefix = arg_value(args, "--prefix").unwrap_or_else(|| "trace".into());
    let files = mempersp_extrae::paraver::export_paraver(std::path::Path::new(&dir), &prefix, &t)
        .unwrap_or_else(|e| {
            eprintln!("export failed: {e}");
            exit(1);
        });
    for f in files {
        println!("{}", f.display());
    }
}

/// Simulate a workload while streaming its trace straight into the
/// output format — text `.prv`, single-file `.mps` store or sharded
/// `.mps.d` directory, chosen by suffix. Events flow to the writer at
/// every epoch boundary, so peak memory stays O(epoch) instead of
/// O(trace); the bytes match a materialized run piped through
/// `convert` exactly.
fn cmd_run(args: &[String]) {
    let workload_name = arg_value(args, "--workload").unwrap_or_else(|| usage());
    let out = arg_value(args, "-o")
        .or_else(|| arg_value(args, "--out"))
        .unwrap_or_else(|| "trace.prv".into());
    let nx: usize = arg_value(args, "--nx").and_then(|v| v.parse().ok()).unwrap_or(8);
    let iters: usize = arg_value(args, "--iters").and_then(|v| v.parse().ok()).unwrap_or(3);
    let cores: usize = arg_value(args, "--cores").and_then(|v| v.parse().ok()).unwrap_or(1);
    let threads = threads_arg(args);
    let group = !args.iter().any(|a| a == "--no-group");
    let opts = StreamOptions {
        force: args.iter().any(|a| a == "--force"),
        writer_threads: threads,
        max_inflight: arg_value(args, "--max-inflight").map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--max-inflight expects a chunk count, got {v:?}");
                exit(1);
            })
        }),
        shard_events: arg_value(args, "--shard-events").map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--shard-events expects an event count, got {v:?}");
                exit(1);
            })
        }),
    };

    let mut mcfg = if args.iter().any(|a| a == "--haswell") {
        MachineConfig::haswell(cores)
    } else {
        let mut m = MachineConfig::small();
        m.cores = cores;
        m
    };
    mcfg.threads = threads;
    mcfg.counter_sample_period = mcfg.counter_sample_period.min(20_000);

    let mut workload: Box<dyn Workload> = match workload_name.as_str() {
        "hpcg" => Box::new(HpcgWorkload::new(HpcgConfig {
            nx,
            max_iters: iters,
            mg_levels: if nx.is_multiple_of(8) && nx >= 16 { 4 } else { 3 },
            group_allocations: group,
            use_mg: true,
        })),
        "stream" => Box::new(StreamTriad::new(nx.max(1024) * 64, iters.max(2))),
        "stencil" => Box::new(Stencil7::new(nx.max(8), iters.max(2))),
        "chase" => Box::new(PointerChase::new(nx.max(1024) * 16, nx.max(1024) * 32, 42)),
        "matmul" => Box::new(TiledMatmul::new(nx.max(32), 8)),
        other => {
            eprintln!("unknown workload {other:?}");
            usage();
        }
    };

    eprintln!("running {} (streaming to {out}) ...", workload.name());
    let wall = std::time::Instant::now();
    let report =
        run_streaming_to_path(mcfg, workload.as_mut(), std::path::Path::new(&out), &opts)
            .unwrap_or_else(|e| {
                eprintln!("cannot stream to {out}: {e}");
                exit(1);
            });
    let elapsed = wall.elapsed().as_secs_f64();
    let accesses = report.stats.total_cores().accesses();
    eprintln!(
        "done: {} events streamed, {} cycles",
        report.events_streamed, report.wall_cycles
    );
    eprintln!(
        "simulated {accesses} accesses in {elapsed:.2}s ({:.2} M accesses/s, {threads} thread{})",
        accesses as f64 / elapsed / 1e6,
        if threads == 1 { "" } else { "s" }
    );
    eprintln!("trace written to {out}");
}

/// The first positional argument: the trace path. Flags that take a
/// value consume the following argument, so `--time 0:1000 t.mps`
/// resolves to `t.mps`, not `0:1000`.
fn trace_path(args: &[String]) -> &String {
    const BOOL_FLAGS: &[&str] =
        &["--stats", "--no-group", "--haswell", "--force", "--no-verify", "--json"];
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "-o" || (a.starts_with("--") && !BOOL_FLAGS.contains(&a.as_str())) {
            i += 2;
        } else if a.starts_with('-') {
            i += 1;
        } else {
            return a;
        }
    }
    usage()
}

/// Open the trace as a [`TraceSource`], sniffing `.prv` vs `.mps`.
fn load_source(args: &[String]) -> Box<dyn TraceSource> {
    let path = trace_path(args);
    open_trace_source(std::path::Path::new(path))
        .unwrap_or_else(|e| die(&format!("cannot open {path}"), &e))
}

/// Fully materialize the trace (either format).
fn load(args: &[String]) -> Trace {
    let path = trace_path(args);
    load_source(args)
        .materialize()
        .unwrap_or_else(|e| die(&format!("cannot load {path}"), &e))
}

fn print_scan_stats(stats: &ScanStats) {
    eprintln!(
        "scan: {} matched / {} scanned events; {} payload bytes; chunks: {} decoded, {} cached, {} skipped{}",
        stats.events_matched,
        stats.events_scanned,
        stats.payload_bytes_decoded,
        stats.chunks_decoded,
        stats.chunks_cached,
        stats.chunks_skipped,
        if stats.chunks_damaged > 0 {
            format!(", {} DAMAGED", stats.chunks_damaged)
        } else {
            String::new()
        }
    );
}

/// Convert between the text `.prv` trace and the binary `.mps` store.
/// The direction follows the *output* extension; the input format is
/// sniffed, so `.mps → .mps` (re-chunking) and `.prv → .prv`
/// (normalization) also work. `--shard-events N` (or a `.mps.d`
/// output) writes a sharded store that rolls a new file every N
/// events; `--threads` sizes the writer's compression pool.
fn cmd_convert(args: &[String]) {
    let out = arg_value(args, "-o").unwrap_or_else(|| usage());
    let out_path = std::path::Path::new(&out);
    let force = args.iter().any(|a| a == "--force");
    if let Err(e) = mempersp_store::check_clobber(out_path, force) {
        eprintln!("convert: {e}");
        exit(1);
    }
    let t = load(args);
    let threads = threads_arg(args);
    let format = match arg_value(args, "--format").as_deref() {
        None | Some("v4") => mempersp_store::StoreFormat::V4,
        Some("v3") => mempersp_store::StoreFormat::V3,
        Some(other) => {
            eprintln!("--format expects v3 or v4, got {other:?}");
            exit(1);
        }
    };
    let shard_events: Option<u64> =
        arg_value(args, "--shard-events").map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--shard-events expects an event count, got {v:?}");
                exit(1);
            })
        });
    let report = |s: mempersp_store::StoreSummary| {
        eprintln!(
            "wrote {} events in {} chunks ({} raw -> {} stored bytes)",
            s.events, s.chunks, s.raw_bytes, s.stored_bytes
        );
    };
    let result = if shard_events.is_some() || out.ends_with(SHARD_DIR_SUFFIX) {
        if format != mempersp_store::StoreFormat::V4 {
            eprintln!("convert: --format v3 is only supported for single-file .mps output");
            exit(1);
        }
        let per_shard = shard_events.unwrap_or(mempersp_store::shard::DEFAULT_EVENTS_PER_SHARD);
        mempersp_store::write_store_sharded(
            out_path,
            &t,
            mempersp_store::DEFAULT_CHUNK_BYTES,
            threads,
            per_shard,
        )
        .map(report)
    } else if out.ends_with(".mps") {
        mempersp_store::write_store_format(
            out_path,
            &t,
            mempersp_store::DEFAULT_CHUNK_BYTES,
            threads,
            format,
        )
        .map(report)
    } else {
        save_trace(out_path, &t)
    };
    if let Err(e) = result {
        die(&format!("cannot write {out}"), &e);
    }
    eprintln!("converted {} -> {out}", trace_path(args));
}

fn parse_query(args: &[String]) -> Query {
    let mut q = Query::all();
    if let Some(t) = arg_value(args, "--time") {
        let (lo, hi) = t
            .split_once(':')
            .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
            .unwrap_or_else(|| {
                eprintln!("--time expects <lo>:<hi> cycles, got {t:?}");
                exit(1);
            });
        q = q.in_time(lo, hi);
    }
    if let Some(c) = arg_value(args, "--cores") {
        let cores: Vec<usize> = c
            .split(',')
            .map(|s| {
                s.trim().parse().unwrap_or_else(|_| {
                    eprintln!("--cores expects a comma-separated list, got {c:?}");
                    exit(1);
                })
            })
            .collect();
        q = q.on_cores(&cores);
    }
    if let Some(k) = arg_value(args, "--kinds") {
        let kinds: Vec<EventClass> = k
            .split(',')
            .map(|s| {
                EventClass::parse(s.trim()).unwrap_or_else(|| {
                    eprintln!("unknown event kind {s:?} (expected e.g. ENTER, PEBS, ALLOC)");
                    exit(1);
                })
            })
            .collect();
        q = q.with_kinds(&kinds);
    }
    if let Some(o) = arg_value(args, "--object") {
        let id: u32 = o.parse().unwrap_or_else(|_| {
            eprintln!("--object expects a numeric object id, got {o:?}");
            exit(1);
        });
        q = q.touching_object(mempersp_extrae::ObjectId(id));
    }
    q
}

/// Run a predicate query against either trace format. On a store the
/// footer index prunes chunks before any decode; `--threads` spreads
/// the surviving chunks over a deterministic parallel scan.
fn cmd_query(args: &[String]) {
    let path = trace_path(args).clone();
    let q = parse_query(args);
    let threads = threads_arg(args);
    let print: usize = arg_value(args, "--print").and_then(|v| v.parse().ok()).unwrap_or(0);

    let p = std::path::Path::new(&path);
    let verify = !args.iter().any(|a| a == "--no-verify");
    let (events, stats) = match MpsSource::open_with_options(p, RecoveryMode::Strict, verify) {
        Ok(src) if threads > 1 => src.query_parallel(&q, threads),
        Ok(src) => src.query(&q),
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData && p.is_file() => {
            // A store-shaped file that fails to open is corruption,
            // not "try the text parser".
            let head = std::fs::read(p).ok().filter(|b| b.len() >= 8).map(|b| b[..8].to_vec());
            if head.as_deref().is_some_and(|h| h.starts_with(b"MPSTORE")) {
                die(&format!("query failed on {path}"), &e);
            }
            let mut src = load_source(args);
            src.filtered(&q).map(|(t, s)| (t.events, s))
        }
        Err(_) => {
            // Not a store: scan the parsed text trace through the
            // same predicate path.
            let mut src = load_source(args);
            src.filtered(&q).map(|(t, s)| (t.events, s))
        }
    }
    .unwrap_or_else(|e| die(&format!("query failed on {path}"), &e));

    if args.iter().any(|a| a == "--json") {
        // One JSON object per line, the exact record schema the
        // service's `/v1/query` puts in its `events` array — so
        // `mempersp query --json` and a curl of the server diff clean.
        use std::io::Write;
        let stdout = std::io::stdout();
        let mut out = std::io::BufWriter::new(stdout.lock());
        for e in &events {
            let line = serde_json::to_string(&mempersp_extrae::json::event_to_json(e))
                .expect("serializing event");
            writeln!(out, "{line}").unwrap_or_else(|e| die("writing output", &e));
        }
        out.flush().unwrap_or_else(|e| die("writing output", &e));
        if args.iter().any(|a| a == "--stats") {
            print_scan_stats(&stats);
        }
        return;
    }

    let mut by_kind = [0u64; EventClass::ALL.len()];
    for e in &events {
        by_kind[EventClass::of(&e.payload) as usize] += 1;
    }
    println!("{} matching events", events.len());
    for kind in EventClass::ALL {
        let n = by_kind[kind as usize];
        if n > 0 {
            println!("  {:<6} {n}", kind.label());
        }
    }
    for e in events.iter().take(print) {
        println!("{}", event_record(e));
    }
    if args.iter().any(|a| a == "--stats") {
        print_scan_stats(&stats);
    }
}

/// Run the resident trace-analysis service over a repository
/// directory of `.mps`/`.mps.d` stores. Blocks until SIGTERM/SIGINT
/// or `POST /admin/shutdown`, then drains in-flight requests.
fn cmd_serve(args: &[String]) {
    let mut cfg = mempersp_server::ServerConfig {
        root: arg_value(args, "--root").map(std::path::PathBuf::from).unwrap_or_else(|| usage()),
        ..Default::default()
    };
    if let Some(addr) = arg_value(args, "--addr") {
        cfg.addr = addr;
    }
    let numeric = |flag: &str| -> Option<u64> {
        arg_value(args, flag).map(|v| {
            v.parse::<u64>().unwrap_or_else(|_| {
                eprintln!("{flag} expects a non-negative integer, got {v:?}");
                exit(1);
            })
        })
    };
    if let Some(n) = numeric("--max-inflight") {
        cfg.max_inflight = (n as usize).max(1);
    }
    if let Some(n) = numeric("--timeout-ms") {
        cfg.timeout_ms = n;
    }
    if let Some(n) = numeric("--workers") {
        cfg.workers = n as usize;
    }
    if let Some(n) = numeric("--memo-cap") {
        cfg.memo_cap = (n as usize).max(1);
    }
    mempersp_server::serve_blocking(&cfg).unwrap_or_else(|e| die("serve", &e));
}

fn cmd_info(args: &[String]) {
    let t = load(args);
    println!("description : {}", t.meta.description);
    println!("cores       : {}", t.meta.num_cores);
    println!("freq        : {} MHz", t.meta.freq_mhz);
    println!("ASLR slide  : 0x{:x}", t.meta.aslr_slide);
    println!("events      : {}", t.num_events());
    println!("regions     : {}", t.region_names.join(", "));
    println!("objects     : {}", t.objects.all().len());
    println!(
        "resolution  : {} resolved / {} unresolved PEBS samples",
        t.resolution.resolved, t.resolution.unresolved
    );
    let reuse = sampled_reuse_histogram(&t, 0, 64);
    if let Some(d) = reuse.typical_distance() {
        println!("reuse       : typical sampled reuse distance ≈ {d} lines ({} reuses)", reuse.reuses);
    }
}

fn cmd_objects(args: &[String]) {
    let mut src = load_source(args);
    let (stats, scan) = object_stats_source(src.as_mut(), None).unwrap_or_else(|e| {
        eprintln!("cannot scan {}: {e}", trace_path(args));
        exit(1);
    });
    println!(
        "{:<44} {:>8} {:>8} {:>9} {:>8}",
        "object", "loads", "stores", "mean lat", "flags"
    );
    for o in &stats {
        println!(
            "{:<44} {:>8} {:>8} {:>9.1} {:>8}",
            o.name,
            o.loads,
            o.stores,
            o.mean_latency,
            if o.is_read_only() { "RO" } else { "" }
        );
    }
    // The PEBS-only re-read is served from the store's block cache
    // after the scan above (free on a parsed .prv).
    let pebs_only = Query::all().with_kinds(&[EventClass::Pebs]);
    if let Ok((t, _)) = src.filtered(&pebs_only) {
        if let Some(p) = latency_profile(&t, None, false) {
            println!(
                "\nload latency: min {} p50 {} p90 {} p99 {} max {} (mean {:.1})",
                p.min, p.p50, p.p90, p.p99, p.max, p.mean
            );
        }
    }
    if args.iter().any(|a| a == "--stats") {
        print_scan_stats(&scan);
    }
}

/// Fold one region (`--region R`) or many regions from **one** trace
/// pass (`--regions a,b,c` or `--regions all`), with the per-region
/// fold work spread over `--threads N` deterministic workers.
fn cmd_fold(args: &[String]) {
    let mut src = load_source(args);
    let threads = threads_arg(args);

    if let Some(spec) = arg_value(args, "--regions") {
        cmd_fold_multi(args, src.as_mut(), &spec, threads);
        return;
    }

    let region = arg_value(args, "--region").unwrap_or_else(|| usage());
    let (folded, scan) = match fold_region_source(src.as_mut(), &region, &FoldingConfig::default())
    {
        Ok(f) => f,
        Err(e) => {
            eprintln!("fold failed: {e}");
            exit(1);
        }
    };
    println!(
        "folded {} instances of {region:?} (rejected {}), mean {:.3} ms, mean {:.0} MIPS",
        folded.instances_used,
        folded.instances_rejected,
        folded.duration_ms(),
        folded.mean_mips()
    );
    print!("{}", ascii::address_panel(&folded, 96, 20));
    print!("{}", ascii::performance_panel(&folded, 80));
    if args.iter().any(|a| a == "--stats") {
        print_scan_stats(&scan);
    }

    if let Some(dir) = arg_value(args, "--csv-dir") {
        // The figure bundle wants the whole trace, not just the
        // folded kinds.
        let t = src.materialize().unwrap_or_else(|e| {
            eprintln!("cannot load {}: {e}", trace_path(args));
            exit(1);
        });
        let phases = iteration_phases(&t, &region, "ComputeSYMGS_ref", "ComputeSPMV_ref", 0);
        let files = figure::write_figure_bundle(
            std::path::Path::new(&dir),
            "fold",
            &format!("{} — folded {}", t.meta.description, region),
            &folded,
            &t,
            &phases,
        )
        .expect("write bundle");
        eprintln!("wrote {} files to {dir}", files.len());
    }
}

/// A region name reduced to a filesystem-safe CSV prefix.
fn csv_prefix(region: &str) -> String {
    region
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == '-' { c } else { '_' })
        .collect()
}

/// The multi-region fold path: one scan of the source feeds every
/// requested region's fold.
fn cmd_fold_multi(args: &[String], src: &mut dyn TraceSource, spec: &str, threads: usize) {
    let names: Vec<String> = if spec == "all" {
        let header = src.header().unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", trace_path(args));
            exit(1);
        });
        header.region_names.clone()
    } else {
        spec.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect()
    };
    if names.is_empty() {
        eprintln!("--regions selected no regions");
        exit(1);
    }
    let requests: Vec<RegionRequest> = names.iter().map(RegionRequest::new).collect();
    let (results, scan) = match fold_regions_source(src, &requests, threads) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fold failed: {e}");
            exit(1);
        }
    };

    let csv_dir = arg_value(args, "--csv-dir");
    let trace_for_csv = csv_dir.as_ref().map(|_| {
        src.materialize().unwrap_or_else(|e| {
            eprintln!("cannot load {}: {e}", trace_path(args));
            exit(1);
        })
    });
    for (region, result) in names.iter().zip(&results) {
        match result {
            Ok(folded) => {
                println!(
                    "folded {} instances of {region:?} (rejected {}), mean {:.3} ms, mean {:.0} MIPS",
                    folded.instances_used,
                    folded.instances_rejected,
                    folded.duration_ms(),
                    folded.mean_mips()
                );
                print!("{}", ascii::performance_panel(folded, 80));
                if let (Some(dir), Some(t)) = (&csv_dir, &trace_for_csv) {
                    let phases =
                        iteration_phases(t, region, "ComputeSYMGS_ref", "ComputeSPMV_ref", 0);
                    let files = figure::write_figure_bundle(
                        std::path::Path::new(dir),
                        &format!("fold_{}", csv_prefix(region)),
                        &format!("{} — folded {}", t.meta.description, region),
                        folded,
                        t,
                        &phases,
                    )
                    .expect("write bundle");
                    eprintln!("wrote {} files to {dir} for {region:?}", files.len());
                }
            }
            Err(e) => println!("{region:?}: not folded ({e})"),
        }
    }
    if args.iter().any(|a| a == "--stats") {
        print_scan_stats(&scan);
    }
}
