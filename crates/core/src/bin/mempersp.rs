//! `mempersp` — the command-line front end of the suite.
//!
//! ```text
//! mempersp run  --workload hpcg --nx 16 --iters 6 --cores 2 -o trace.prv
//! mempersp run  --workload stream|stencil|chase|matmul -o trace.prv
//! mempersp info trace.prv
//! mempersp objects trace.prv
//! mempersp fold trace.prv --region CG_iteration [--csv-dir target/fig1]
//! ```
//!
//! Mirrors the real tool-chain: Extrae writes a trace; the Folding
//! tool consumes it post-mortem.

use mempersp_core::analysis::latency::latency_profile;
use mempersp_core::analysis::objects::object_stats;
use mempersp_core::analysis::phases::iteration_phases;
use mempersp_core::analysis::reuse::sampled_reuse_histogram;
use mempersp_core::report::{ascii, figure};
use mempersp_core::{Machine, MachineConfig};
use mempersp_extrae::trace_format::{load_trace, save_trace};
use mempersp_extrae::{Trace, Workload};
use mempersp_folding::{fold_region, FoldingConfig};
use mempersp_hpcg::{HpcgConfig, HpcgWorkload};
use mempersp_workloads::{PointerChase, Stencil7, StreamTriad, TiledMatmul};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  mempersp run --workload <hpcg|stream|stencil|chase|matmul> \
         [--nx N] [--iters N] [--cores N] [--threads N] [--no-group] [--haswell] -o <trace>\n  \
         mempersp info <trace>\n  mempersp objects <trace>\n  \
         mempersp fold <trace> --region <name> [--csv-dir <dir>]\n  \
         mempersp export <trace> [--dir <dir>] [--prefix <name>]\n  \
         mempersp profile <trace>"
    );
    exit(2);
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("objects") => cmd_objects(&args[1..]),
        Some("fold") => cmd_fold(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        _ => usage(),
    }
}

/// Flat sampling profile.
fn cmd_profile(args: &[String]) {
    let t = load(args);
    let (rows, total) = mempersp_core::analysis::profile::flat_profile(&t);
    println!("{total} timer samples");
    println!("{:<28} {:>8} {:>7} {:>9}", "region", "self", "self%", "inclusive");
    for r in rows {
        println!(
            "{:<28} {:>8} {:>6.1}% {:>9}",
            r.region,
            r.self_samples,
            100.0 * r.self_fraction(total),
            r.inclusive_samples
        );
    }
}

/// Export a trace to the Paraver `.prv/.pcf/.row` triple.
fn cmd_export(args: &[String]) {
    let t = load(args);
    let dir = arg_value(args, "--dir").unwrap_or_else(|| "paraver".into());
    let prefix = arg_value(args, "--prefix").unwrap_or_else(|| "trace".into());
    let files = mempersp_extrae::paraver::export_paraver(std::path::Path::new(&dir), &prefix, &t)
        .expect("write paraver files");
    for f in files {
        println!("{}", f.display());
    }
}

fn cmd_run(args: &[String]) {
    let workload_name = arg_value(args, "--workload").unwrap_or_else(|| usage());
    let out = arg_value(args, "-o").unwrap_or_else(|| "trace.prv".into());
    let nx: usize = arg_value(args, "--nx").and_then(|v| v.parse().ok()).unwrap_or(8);
    let iters: usize = arg_value(args, "--iters").and_then(|v| v.parse().ok()).unwrap_or(3);
    let cores: usize = arg_value(args, "--cores").and_then(|v| v.parse().ok()).unwrap_or(1);
    let threads: usize =
        arg_value(args, "--threads").and_then(|v| v.parse().ok()).unwrap_or(1).max(1);
    let group = !args.iter().any(|a| a == "--no-group");

    let mut mcfg = if args.iter().any(|a| a == "--haswell") {
        MachineConfig::haswell(cores)
    } else {
        let mut m = MachineConfig::small();
        m.cores = cores;
        m
    };
    mcfg.threads = threads.max(1);
    mcfg.counter_sample_period = mcfg.counter_sample_period.min(20_000);

    let mut workload: Box<dyn Workload> = match workload_name.as_str() {
        "hpcg" => Box::new(HpcgWorkload::new(HpcgConfig {
            nx,
            max_iters: iters,
            mg_levels: if nx.is_multiple_of(8) && nx >= 16 { 4 } else { 3 },
            group_allocations: group,
            use_mg: true,
        })),
        "stream" => Box::new(StreamTriad::new(nx.max(1024) * 64, iters.max(2))),
        "stencil" => Box::new(Stencil7::new(nx.max(8), iters.max(2))),
        "chase" => Box::new(PointerChase::new(nx.max(1024) * 16, nx.max(1024) * 32, 42)),
        "matmul" => Box::new(TiledMatmul::new(nx.max(32), 8)),
        other => {
            eprintln!("unknown workload {other:?}");
            usage();
        }
    };

    let mut machine = Machine::new(mcfg);
    eprintln!("running {} ...", workload.name());
    let wall = std::time::Instant::now();
    let report = machine.run(workload.as_mut());
    let elapsed = wall.elapsed().as_secs_f64();
    let accesses = report.stats.total_cores().accesses();
    eprintln!(
        "done: {} events, {} PEBS samples, {} cycles",
        report.trace.num_events(),
        report.trace.pebs_events().count(),
        report.wall_cycles
    );
    eprintln!(
        "simulated {accesses} accesses in {elapsed:.2}s ({:.2} M accesses/s, {threads} thread{})",
        accesses as f64 / elapsed / 1e6,
        if threads == 1 { "" } else { "s" }
    );
    save_trace(std::path::Path::new(&out), &report.trace).expect("write trace");
    eprintln!("trace written to {out}");
}

fn load(args: &[String]) -> Trace {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| usage());
    load_trace(std::path::Path::new(path)).unwrap_or_else(|e| {
        eprintln!("cannot load {path}: {e}");
        exit(1);
    })
}

fn cmd_info(args: &[String]) {
    let t = load(args);
    println!("description : {}", t.meta.description);
    println!("cores       : {}", t.meta.num_cores);
    println!("freq        : {} MHz", t.meta.freq_mhz);
    println!("ASLR slide  : 0x{:x}", t.meta.aslr_slide);
    println!("events      : {}", t.num_events());
    println!("regions     : {}", t.region_names.join(", "));
    println!("objects     : {}", t.objects.all().len());
    println!(
        "resolution  : {} resolved / {} unresolved PEBS samples",
        t.resolution.resolved, t.resolution.unresolved
    );
    let reuse = sampled_reuse_histogram(&t, 0, 64);
    if let Some(d) = reuse.typical_distance() {
        println!("reuse       : typical sampled reuse distance ≈ {d} lines ({} reuses)", reuse.reuses);
    }
}

fn cmd_objects(args: &[String]) {
    let t = load(args);
    let stats = object_stats(&t, None);
    println!(
        "{:<44} {:>8} {:>8} {:>9} {:>8}",
        "object", "loads", "stores", "mean lat", "flags"
    );
    for o in &stats {
        println!(
            "{:<44} {:>8} {:>8} {:>9.1} {:>8}",
            o.name,
            o.loads,
            o.stores,
            o.mean_latency,
            if o.is_read_only() { "RO" } else { "" }
        );
    }
    if let Some(p) = latency_profile(&t, None, false) {
        println!(
            "\nload latency: min {} p50 {} p90 {} p99 {} max {} (mean {:.1})",
            p.min, p.p50, p.p90, p.p99, p.max, p.mean
        );
    }
}

fn cmd_fold(args: &[String]) {
    let t = load(args);
    let region = arg_value(args, "--region").unwrap_or_else(|| usage());
    let folded = match fold_region(&t, &region, &FoldingConfig::default()) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("fold failed: {e}");
            exit(1);
        }
    };
    println!(
        "folded {} instances of {region:?} (rejected {}), mean {:.3} ms, mean {:.0} MIPS",
        folded.instances_used,
        folded.instances_rejected,
        folded.duration_ms(),
        folded.mean_mips()
    );
    print!("{}", ascii::address_panel(&folded, 96, 20));
    print!("{}", ascii::performance_panel(&folded, 80));

    if let Some(dir) = arg_value(args, "--csv-dir") {
        let phases = iteration_phases(&t, &region, "ComputeSYMGS_ref", "ComputeSPMV_ref", 0);
        let files = figure::write_figure_bundle(
            std::path::Path::new(&dir),
            "fold",
            &format!("{} — folded {}", t.meta.description, region),
            &folded,
            &t,
            &phases,
        )
        .expect("write bundle");
        eprintln!("wrote {} files to {dir}", files.len());
    }
}
