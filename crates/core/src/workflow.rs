//! The paper's complete work-flow, packaged: run HPCG on the
//! simulated node, fold the repetitive regions, and extract every
//! quantitative observation of Section III.

use crate::analysis::bandwidth::{phase_bandwidths, PhaseBandwidth};
use crate::analysis::objects::{object_stats, resolved_fraction, ObjectStat};
use crate::analysis::phases::{iteration_phases, Phase};
use crate::analysis::sweeps::{sweep_split_x, symgs_sweeps, SweepInfo};
use crate::machine::{Machine, MachineConfig, RunReport};
use mempersp_extrae::stream_writer::PrvSink;
use mempersp_extrae::{EventSink, ObjectId, Workload};
use mempersp_store::{ShardedWriter, StoreWriter, DEFAULT_CHUNK_BYTES, SHARD_DIR_SUFFIX};
use std::io;
use std::path::Path;
use mempersp_folding::{fold_regions, FoldedRegion, FoldingConfig, RegionRequest};
use mempersp_hpcg::generate::{expected_matrix_group_bytes, GROUP_MAP, GROUP_MATRIX};
use mempersp_hpcg::kernels::{SYMGS_BWD_LINES, SYMGS_FILE, SYMGS_FWD_LINES};
use mempersp_hpcg::{regions, Geometry, HpcgConfig, HpcgWorkload};

/// Everything the paper reads off its Fig. 1 and Section III text.
#[derive(Debug)]
pub struct HpcgAnalysis {
    pub report: RunReport,
    /// Per-rank solver results (numerical validation).
    pub solver: Vec<mempersp_hpcg::CgResult>,
    /// The folded CG iteration (the figure's time axis).
    pub folded_iteration: FoldedRegion,
    /// The folded fine-level SYMGS (for the a1/a2 sweeps).
    pub folded_symgs: FoldedRegion,
    /// Detected phases A–E in folded iteration time.
    pub phases: Vec<Phase>,
    /// Rank-0's matrix allocation group (the 617 MB object), if
    /// grouping was enabled.
    pub matrix_object: Option<ObjectId>,
    /// Rank-0's map allocation group (the 89 MB object).
    pub map_object: Option<ObjectId>,
    /// Forward/backward sweep summaries within the folded SYMGS.
    pub sweeps: Option<(SweepInfo, SweepInfo)>,
    /// Traversal bandwidths of a1, a2 (SYMGS halves) and B, E (SpMV).
    pub bandwidths: Vec<PhaseBandwidth>,
    /// Per-object PEBS statistics within the execution phase.
    pub objects: Vec<ObjectStat>,
    /// Fraction of execution-phase PEBS samples resolved to objects.
    pub resolved_fraction: f64,
}

/// Options for [`run_streaming_to_path`]'s writer side.
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Compressor threads of the store writer (ignored for `.prv`).
    pub writer_threads: usize,
    /// In-flight chunk budget; `None` takes the writer default
    /// (`threads × DEFAULT_INFLIGHT_PER_THREAD`).
    pub max_inflight: Option<usize>,
    /// Roll `.mps.d` shards every this many events. `Some` forces the
    /// sharded layout even without the `.mps.d` suffix.
    pub shard_events: Option<u64>,
    /// Allow overwriting an existing output. Defaults to `true` for
    /// library callers (benchmarks and tests legitimately rewrite a
    /// path); the CLI passes `false` unless the user said `--force`.
    pub force: bool,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions { writer_threads: 1, max_inflight: None, shard_events: None, force: true }
    }
}

/// Build the event sink `run --out` streams into, picked by suffix:
/// `.mps.d` (or an explicit shard threshold) → sharded store, `.mps`
/// → single-file store, anything else → Paraver text via [`PrvSink`].
pub fn sink_for_path(out: &Path, opts: &StreamOptions) -> io::Result<Box<dyn EventSink>> {
    mempersp_store::check_clobber(out, opts.force)?;
    let threads = opts.writer_threads.max(1);
    let is_shard_dir = out
        .file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.ends_with(SHARD_DIR_SUFFIX));
    if is_shard_dir || opts.shard_events.is_some() {
        let per_shard =
            opts.shard_events.unwrap_or(mempersp_store::DEFAULT_EVENTS_PER_SHARD);
        let w = match opts.max_inflight {
            Some(b) => {
                ShardedWriter::with_budget(out, DEFAULT_CHUNK_BYTES, threads, per_shard, b)?
            }
            None => ShardedWriter::with_options(out, DEFAULT_CHUNK_BYTES, threads, per_shard)?,
        };
        return Ok(Box::new(w));
    }
    if out.extension().is_some_and(|e| e == "mps") {
        let w = match opts.max_inflight {
            Some(b) => StoreWriter::with_options(out, DEFAULT_CHUNK_BYTES, threads, b)?,
            None => StoreWriter::with_threads(out, DEFAULT_CHUNK_BYTES, threads)?,
        };
        return Ok(Box::new(w));
    }
    Ok(Box::new(PrvSink::create(out)?))
}

/// The one-pass trace-production pipeline: simulate `workload` on a
/// fresh machine while events stream straight into the on-disk format
/// named by `out` — no materialized event list, peak memory O(epoch).
/// The bytes written are identical to materializing the trace and
/// converting it afterwards, for any writer thread count.
pub fn run_streaming_to_path(
    machine_cfg: MachineConfig,
    workload: &mut dyn Workload,
    out: &Path,
    opts: &StreamOptions,
) -> io::Result<RunReport> {
    let sink = sink_for_path(out, opts)?;
    let mut machine = Machine::new(machine_cfg);
    machine.run_streaming(workload, sink)
}

/// Run the benchmark and the full analysis.
pub fn analyze_hpcg(machine_cfg: MachineConfig, hpcg_cfg: HpcgConfig) -> HpcgAnalysis {
    let geom = Geometry::cube(hpcg_cfg.nx);
    // The simulator's worker count doubles as the fold engine's.
    let fold_threads = machine_cfg.threads.max(1);
    let mut machine = Machine::new(machine_cfg);
    let mut workload = HpcgWorkload::new(hpcg_cfg);
    let report = machine.run(&mut workload);
    let trace = &report.trace;

    // Both regions fold from one pass over the trace. The SYMGS region
    // has instances at every MG level; fold only the slowest duration
    // cluster — the fine-level calls the figure shows.
    let symgs_cfg = FoldingConfig {
        filter: mempersp_folding::InstanceFilter::slowest_cluster(0.5),
        ..FoldingConfig::default()
    };
    let mut folded = fold_regions(
        trace,
        &[
            RegionRequest::new(regions::CG_ITERATION),
            RegionRequest::with_cfg(regions::SYMGS, symgs_cfg),
        ],
        fold_threads,
    );
    let folded_symgs = folded.pop().expect("two fold slots").expect("SYMGS instances present");
    let folded_iteration =
        folded.pop().expect("two fold slots").expect("CG iterations present");

    let phases = iteration_phases(trace, regions::CG_ITERATION, regions::SYMGS, regions::SPMV, 0);

    let find_group = |name: &str| {
        trace
            .objects
            .all()
            .iter()
            .find(|o| o.name == name)
            .map(|o| o.id)
    };
    let matrix_object = find_group(GROUP_MATRIX);
    let map_object = find_group(GROUP_MAP);

    let sweeps = matrix_object.and_then(|obj| {
        symgs_sweeps(
            &folded_symgs,
            trace,
            obj,
            SYMGS_FILE,
            SYMGS_FWD_LINES,
            SYMGS_BWD_LINES,
            (0.0, 1.0),
        )
    });

    // Bandwidths: each SYMGS sweep and each SpMV traverses the matrix
    // structure once. The paper divides the structure size by the
    // phase duration.
    let traversal_bytes = expected_matrix_group_bytes(geom);
    let mut bandwidths = Vec::new();
    if let Some((fwd, bwd)) = &sweeps {
        let split = sweep_split_x(fwd, bwd);
        let symgs_phase = Phase {
            label: "SYMGS".into(),
            region: regions::SYMGS.into(),
            x_start: 0.0,
            x_end: 1.0,
        };
        let (a1, a2) = symgs_phase.split(split, "a1", "a2");
        bandwidths.extend(phase_bandwidths(&folded_symgs, &[a1, a2], traversal_bytes));
    }
    let spmv_phases: Vec<Phase> = phases
        .iter()
        .filter(|p| p.label == "B" || p.label == "E")
        .cloned()
        .collect();
    bandwidths.extend(phase_bandwidths(&folded_iteration, &spmv_phases, traversal_bytes));

    // Per-object statistics within the execution phase on core 0.
    let exec_window = trace
        .region_id(regions::EXECUTION)
        .map(|id| trace.region_instances(id, 0))
        .and_then(|v| v.first().copied());
    let objects = object_stats(trace, exec_window);
    let resolved = resolved_fraction(&objects);

    HpcgAnalysis {
        solver: workload.results.clone(),
        folded_iteration,
        folded_symgs,
        phases,
        matrix_object,
        map_object,
        sweeps,
        bandwidths,
        objects,
        resolved_fraction: resolved,
        report,
    }
}

impl HpcgAnalysis {
    /// Bandwidth of one labelled phase (a1/a2/B/E), in MB/s.
    pub fn bandwidth(&self, label: &str) -> Option<f64> {
        self.bandwidths
            .iter()
            .find(|b| b.label == label)
            .map(|b| b.mb_per_s)
    }

    /// The matrix object's statistics, if sampled.
    pub fn matrix_stats(&self) -> Option<&ObjectStat> {
        let id = self.matrix_object?;
        self.objects.iter().find(|s| s.id == Some(id))
    }

    /// A machine-readable record of the key metrics (written next to
    /// the figure bundle so experiments are reproducible artifacts).
    pub fn json_summary(&self) -> serde_json::Value {
        serde_json::json!({
            "iterations_folded": self.folded_iteration.instances_used,
            "iterations_rejected": self.folded_iteration.instances_rejected,
            "mean_iteration_ms": self.folded_iteration.duration_ms(),
            "mean_mips": self.folded_iteration.mean_mips(),
            "ipc_nominal": self.folded_iteration.mean_mips()
                / self.report.trace.meta.freq_mhz as f64,
            "phases": self.phases.iter().map(|p| {
                serde_json::json!({
                    "label": p.label.clone(),
                    "region": p.region.clone(),
                    "x_start": p.x_start,
                    "x_end": p.x_end,
                })
            }).collect::<Vec<_>>(),
            "bandwidth_mb_per_s": self.bandwidths.iter().map(|b| {
                serde_json::json!({ "phase": b.label.clone(), "mb_per_s": b.mb_per_s })
            }).collect::<Vec<_>>(),
            "sweeps": self.sweeps.as_ref().map(|(f, b)| serde_json::json!({
                "forward": format!("{:?}", f.direction),
                "backward": format!("{:?}", b.direction),
            })),
            "resolved_fraction": self.resolved_fraction,
            "matrix_read_only": self.matrix_stats().map(|s| s.is_read_only()),
            "solver_residual_reduction": self.solver.first().map(|r| r.reduction()),
        })
    }

    /// A one-screen textual summary of the whole analysis.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== mempersp HPCG analysis =================================");
        let _ = writeln!(
            out,
            "iterations folded: {} (rejected {}), mean duration {:.3} ms",
            self.folded_iteration.instances_used,
            self.folded_iteration.instances_rejected,
            self.folded_iteration.duration_ms()
        );
        let _ = writeln!(out, "mean MIPS: {:.0}", self.folded_iteration.mean_mips());
        if let Some(rmse) = self
            .folded_iteration
            .fit_rmse(mempersp_pebs::EventKind::Instructions)
        {
            let _ = writeln!(out, "fold quality: instruction-curve RMSE {:.3} (normalized)", rmse);
        }
        let _ = writeln!(out, "phases:");
        for p in &self.phases {
            let _ = writeln!(
                out,
                "  {}  {:<22} x=[{:.3},{:.3}] ({:.1} % of iteration)",
                p.label,
                p.region,
                p.x_start,
                p.x_end,
                100.0 * p.fraction()
            );
        }
        if let Some((fwd, bwd)) = &self.sweeps {
            let _ = writeln!(
                out,
                "SYMGS sweeps: fwd {:?} (slope {:+.3e}), bwd {:?} (slope {:+.3e})",
                fwd.direction, fwd.slope, bwd.direction, bwd.slope
            );
        }
        let _ = writeln!(out, "traversal bandwidths:");
        for b in &self.bandwidths {
            let _ = writeln!(out, "  {:<3} {:>9.0} MB/s over {:.3} ms", b.label, b.mb_per_s, b.seconds * 1e3);
        }
        let stack = crate::analysis::cpi::cpi_stack_mean(&self.folded_iteration);
        let _ = writeln!(
            out,
            "CPI stack: total {:.2} = base {:.2} + L2 {:.2} + L3 {:.2} + DRAM {:.2}  ({:.0} % memory-bound)",
            stack.total,
            stack.base,
            stack.l2,
            stack.l3,
            stack.dram,
            100.0 * stack.memory_bound_fraction()
        );
        let _ = writeln!(
            out,
            "PEBS samples resolved to objects: {:.1} %",
            100.0 * self.resolved_fraction
        );
        let _ = writeln!(out, "top objects by samples:");
        for o in self.objects.iter().take(6) {
            let _ = writeln!(
                out,
                "  {:<40} loads {:>6} stores {:>6} mean lat {:>6.1}{}",
                o.name,
                o.loads,
                o.stores,
                o.mean_latency,
                if o.is_read_only() { "  [read-only]" } else { "" }
            );
        }
        let _ = writeln!(out, "dominant data streams per phase:");
        let tables = crate::analysis::streams::phase_streams(
            &self.folded_iteration,
            &self.report.trace,
            &self.phases,
        );
        out.push_str(&crate::analysis::streams::streams_report(&tables));
        out
    }
}
