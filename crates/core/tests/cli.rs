//! Black-box tests of the `mempersp` command-line binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mempersp"))
}

fn tmpdir() -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("mempersp_cli_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn run_info_objects_fold_pipeline() {
    let dir = tmpdir();
    let trace = dir.join("hpcg.prv");

    // run
    let out = bin()
        .args([
            "run", "--workload", "hpcg", "--nx", "8", "--iters", "2", "--cores", "1", "-o",
        ])
        .arg(&trace)
        .output()
        .expect("spawn mempersp run");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(trace.exists());

    // info
    let out = bin().arg("info").arg(&trace).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("HPCG"), "info mentions the workload: {text}");
    assert!(text.contains("CG_iteration"), "regions listed");

    // objects
    let out = bin().arg("objects").arg(&trace).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("124_GenerateProblem_ref.cpp"), "{text}");
    assert!(text.contains("RO"), "matrix flagged read-only: {text}");

    // fold, with the CSV bundle
    let csv_dir = dir.join("csv");
    let out = bin()
        .args(["fold"])
        .arg(&trace)
        .args(["--region", "CG_iteration", "--csv-dir"])
        .arg(&csv_dir)
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("folded 2 instances"), "{text}");
    assert!(text.contains("MIPS"), "{text}");
    for f in ["fold_lines.csv", "fold_addresses.csv", "fold_perf.csv", "fold.gp"] {
        assert!(csv_dir.join(f).exists(), "{f} missing");
    }

    // flat profile
    let out = bin().arg("profile").arg(&trace).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ComputeSYMGS_ref"), "{text}");
    assert!(text.contains("self%"), "{text}");

    // export to Paraver
    let pdir = dir.join("paraver");
    let out = bin()
        .args(["export"])
        .arg(&trace)
        .args(["--dir"])
        .arg(&pdir)
        .args(["--prefix", "hpcg"])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    for ext in ["prv", "pcf", "row"] {
        let f = pdir.join(format!("hpcg.{ext}"));
        assert!(f.exists(), "{} missing", f.display());
    }
    let pcf = std::fs::read_to_string(pdir.join("hpcg.pcf")).unwrap();
    assert!(pcf.contains("124_GenerateProblem_ref.cpp"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fold_unknown_region_fails_cleanly() {
    let dir = tmpdir();
    let trace = dir.join("stream.prv");
    let out = bin()
        .args(["run", "--workload", "stream", "-o"])
        .arg(&trace)
        .output()
        .unwrap();
    assert!(out.status.success());

    let out = bin()
        .args(["fold"])
        .arg(&trace)
        .args(["--region", "nonexistent"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("fold failed"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn convert_round_trip_is_byte_identical_and_queries_work() {
    let dir = tmpdir();
    let prv = dir.join("rt.prv");
    let mps = dir.join("rt.mps");
    let back = dir.join("rt_back.prv");

    let out = bin()
        .args(["run", "--workload", "stream", "--nx", "32", "-o"])
        .arg(&prv)
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    // prv -> mps -> prv reproduces the text trace exactly.
    let out = bin().args(["convert"]).arg(&prv).arg("-o").arg(&mps).output().unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let out = bin().args(["convert"]).arg(&mps).arg("-o").arg(&back).output().unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(
        std::fs::read(&prv).unwrap(),
        std::fs::read(&back).unwrap(),
        "prv -> mps -> prv must be byte-identical"
    );

    // The same query answers identically on both containers.
    let q = ["query", "--kinds", "PEBS,ALLOC", "--stats"];
    let on_prv = bin().args(q).arg(&prv).output().unwrap();
    let on_mps = bin().args(q).arg(&mps).output().unwrap();
    assert!(on_prv.status.success() && on_mps.status.success());
    assert_eq!(on_prv.stdout, on_mps.stdout, "query results must not depend on the container");
    let text = String::from_utf8_lossy(&on_mps.stdout);
    assert!(text.contains("matching events"), "{text}");
    assert!(text.contains("PEBS"), "{text}");

    // Analyses accept the store directly.
    let out = bin().arg("info").arg(&mps).output().unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("STREAM"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn convert_format_flag_writes_v3_and_round_trips() {
    let dir = tmpdir();
    let prv = dir.join("f.prv");
    let v3 = dir.join("f_v3.mps");
    let v4 = dir.join("f_v4.mps");
    let back = dir.join("f_back.prv");

    let out = bin()
        .args(["run", "--workload", "stream", "--nx", "32", "-o"])
        .arg(&prv)
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    // --format v3 emits the LEB128 container (MPSTORE3 magic), the
    // default emits v4 (MPSTORE4); both carry the same events.
    let out =
        bin().args(["convert"]).arg(&prv).args(["--format", "v3", "-o"]).arg(&v3).output().unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let out = bin().args(["convert"]).arg(&prv).arg("-o").arg(&v4).output().unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(&std::fs::read(&v3).unwrap()[..8], b"MPSTORE3");
    assert_eq!(&std::fs::read(&v4).unwrap()[..8], b"MPSTORE4");

    // v3 -> prv reproduces the text trace exactly (v4 is covered by
    // convert_round_trip_is_byte_identical_and_queries_work).
    let out = bin().args(["convert"]).arg(&v3).arg("-o").arg(&back).output().unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(std::fs::read(&prv).unwrap(), std::fs::read(&back).unwrap());

    // An unknown format is a usage error, not a silent default.
    let out = bin()
        .args(["convert"])
        .arg(&prv)
        .args(["--format", "v9", "-o"])
        .arg(dir.join("nope.mps"))
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--format"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn query_time_window_prunes_chunks_on_a_store() {
    let dir = tmpdir();
    let prv = dir.join("w.prv");
    let mps = dir.join("w.mps");
    let out = bin()
        .args(["run", "--workload", "stream", "--nx", "64", "-o"])
        .arg(&prv)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = bin().args(["convert"]).arg(&prv).arg("-o").arg(&mps).output().unwrap();
    assert!(out.status.success());

    let out = bin()
        .args(["query", "--time", "0:1000", "--stats", "--threads", "2"])
        .arg(&mps)
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("skipped"), "stats line present: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_1() {
    // Exit 1 is usage/IO; exit 2 is reserved for store corruption.
    let out = bin().output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let out = bin().args(["run", "--workload", "bogus", "-o", "x"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn info_on_missing_file_fails() {
    let out = bin().args(["info", "/nonexistent/file.prv"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
}
