//! # mempersp-server — the resident trace-analysis service
//!
//! A long-running, multi-tenant HTTP/1.1 + JSON server over a
//! repository of `.mps` stores, built on `std::net` alone (the HTTP
//! layer is hand-rolled in [`http`]; there is deliberately no web
//! framework in the dependency tree).
//!
//! Why a service at all: the CLI pays the full open-parse-scan cost
//! per invocation. A resident server opens each store once, keeps the
//! sharded block cache warm across requests and across *clients*, and
//! memoizes finished fold results — so the interactive loop of an
//! analysis session (query, refine, fold, compare) stops re-paying
//! cold-start on every step.
//!
//! Operational shape:
//!
//! * **bounded worker pool** ([`worker`]) sized by `--workers`;
//! * **admission control** at accept time: more than `--max-inflight`
//!   concurrent requests → immediate `429`, the overloaded service
//!   degrades by refusing, never by stalling or dying;
//! * **deadlines**: `--timeout-ms` arms a [`mempersp_store::CancelToken`]
//!   per request, checked at chunk boundaries inside the scan loops →
//!   `503` instead of a runaway scan;
//! * **graceful shutdown**: SIGTERM or `POST /admin/shutdown` stops
//!   accepting, drains in-flight requests, then exits.
//!
//! See [`router`] for the endpoint table and status-code contract.

pub mod http;
pub mod memo;
pub mod metrics;
pub mod repo;
pub mod router;
pub mod worker;

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use router::App;

/// How long a worker waits for a peer to produce its request bytes
/// before answering `408`. Protects the pool from slow-loris peers.
pub const READ_TIMEOUT: Duration = Duration::from_secs(10);
/// Poll interval for the drain loop, the SIGTERM bridge, and the
/// accept loop's error backoff.
const POLL_INTERVAL: Duration = Duration::from_millis(10);
/// Upper bound on the shutdown drain; in-flight requests still
/// running after this are abandoned (their sockets die with the
/// process).
const DRAIN_LIMIT: Duration = Duration::from_secs(30);

/// Server configuration (the `mempersp serve` flags).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Trace repository directory.
    pub root: PathBuf,
    /// Bind address, e.g. `127.0.0.1:7230` (port 0 = ephemeral).
    pub addr: String,
    /// Maximum concurrent requests before `429`.
    pub max_inflight: usize,
    /// Per-request deadline in milliseconds; 0 disables it.
    pub timeout_ms: u64,
    /// Worker threads; 0 = one per available CPU.
    pub workers: usize,
    /// Maximum memoized fold bodies.
    pub memo_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            root: PathBuf::from("."),
            addr: "127.0.0.1:7230".to_string(),
            max_inflight: 64,
            timeout_ms: 30_000,
            workers: 0,
            memo_cap: 64,
        }
    }
}

impl ServerConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    }

    fn timeout(&self) -> Option<Duration> {
        (self.timeout_ms > 0).then(|| Duration::from_millis(self.timeout_ms))
    }
}

/// A running server. Dropping the handle does NOT stop the service;
/// call [`ServerHandle::shutdown`] then [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    app: Arc<App>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared application state (tests read metrics through this).
    pub fn app(&self) -> &Arc<App> {
        &self.app
    }

    /// Ask the accept loop to drain and exit.
    pub fn shutdown(&self) {
        self.app.request_shutdown();
    }

    /// Wait for the accept loop (and its workers) to finish.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Bind, spawn the accept loop + worker pool, and return immediately.
pub fn start(cfg: &ServerConfig) -> io::Result<ServerHandle> {
    let listener = bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let app = Arc::new(App::new(&cfg.root, cfg.timeout(), cfg.memo_cap)?);
    app.set_wake_addr(addr);
    let accept_app = Arc::clone(&app);
    let cfg = cfg.clone();
    let accept_thread = std::thread::Builder::new()
        .name("mempersp-accept".to_string())
        .spawn(move || accept_loop(&listener, &accept_app, &cfg))?;
    Ok(ServerHandle { addr, app, accept_thread: Some(accept_thread) })
}

fn bind(addr: &str) -> io::Result<TcpListener> {
    let addrs: Vec<SocketAddr> = addr
        .to_socket_addrs()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("bad --addr {addr:?}: {e}")))?
        .collect();
    TcpListener::bind(&addrs[..])
}

fn accept_loop(listener: &TcpListener, app: &Arc<App>, cfg: &ServerConfig) {
    // Blocking accept: zero added latency on the hot path. Shutdown
    // (admin endpoint, SIGTERM bridge, handle) flips the flag and then
    // pokes the listener with a loopback connect, so the loop never
    // sits in accept() past a shutdown request.
    let pool = worker::Pool::new(cfg.effective_workers());
    let max_inflight = cfg.max_inflight.max(1) as u64;

    while !app.shutdown.load(Ordering::Acquire) {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => {
                // Transient accept failure (ECONNABORTED, fd pressure);
                // back off briefly instead of spinning.
                std::thread::sleep(POLL_INTERVAL);
                continue;
            }
        };
        // The shutdown wake-connection (and anything racing it) is
        // dropped unanswered.
        if app.shutdown.load(Ordering::Acquire) {
            break;
        }
        // Admission control happens HERE, before any bytes are read:
        // over the cap the connection is answered 429 on the accept
        // thread and closed. The worker queue can therefore never hold
        // more than max_inflight jobs.
        if !app.metrics.try_enter(max_inflight) {
            reject_overloaded(stream, app);
            continue;
        }
        let app = Arc::clone(app);
        pool.execute(move || {
            serve_connection(stream, &app);
            app.metrics.exit();
        });
    }

    // Drain: stop accepting, let in-flight requests finish.
    let drain_start = Instant::now();
    while app.metrics.inflight() > 0 && drain_start.elapsed() < DRAIN_LIMIT {
        std::thread::sleep(POLL_INTERVAL);
    }
    pool.join();
}

fn reject_overloaded(mut stream: TcpStream, app: &Arc<App>) {
    app.metrics.record_rejected();
    let resp = http::Response::json(
        429,
        serde_json::to_string(&serde_json::json!({
            "error": "server is at its in-flight request limit, retry later"
        }))
        .unwrap(),
    )
    .with_header("Retry-After", "1");
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let _ = http::write_response(&mut stream, &resp);
    close_gracefully(stream);
}

/// Close a connection whose request may not have been read in full: a
/// plain close (or `Shutdown::Both`) would RST the moment the peer's
/// remaining request bytes arrive, and an RST can destroy a response
/// that is still in the peer's receive buffer. Half-close the write
/// side instead and drain a bounded amount of the request, so the peer
/// gets to finish writing and then sees a clean EOF after the response.
fn close_gracefully(mut stream: TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    while let Ok(n) = stream.read(&mut sink) {
        if n == 0 {
            break;
        }
        drained += n;
        if drained > 64 * 1024 {
            break;
        }
    }
}

/// Serve exactly one request on `stream` and close it.
fn serve_connection(mut stream: TcpStream, app: &Arc<App>) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_write_timeout(Some(READ_TIMEOUT));
    let start = Instant::now();

    let (endpoint, resp) = match http::read_request(&mut stream) {
        Ok(req) => router::handle(app, &req),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
            // Peer connected and hung up without a request; nothing to
            // answer, nothing to record.
            return;
        }
        Err(e) if matches!(e.kind(), io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock) => (
            "(read)",
            http::Response::json(
                408,
                serde_json::to_string(&serde_json::json!({
                    "error": "timed out waiting for the request"
                }))
                .unwrap(),
            ),
        ),
        Err(e) => (
            "(parse)",
            http::Response::json(
                400,
                serde_json::to_string(&serde_json::json!({ "error": e.to_string() })).unwrap(),
            ),
        ),
    };

    let status = resp.status;
    let bytes = http::write_response(&mut stream, &resp).unwrap_or(0);
    let _ = stream.flush();
    // Error responses can be written before the request was consumed in
    // full (parse failures, oversized bodies); see close_gracefully.
    close_gracefully(stream);
    app.metrics.record(endpoint, status, start.elapsed(), bytes);
}

// ---- blocking front-end (the `mempersp serve` verb) ----------------

/// Set by the SIGTERM handler; polled by [`serve_blocking`]'s accept
/// loop through the shared shutdown flag bridge below.
static SIGTERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_sig: i32) {
    SIGTERM.store(true, Ordering::Release);
}

fn install_sigterm_handler() {
    // Vendored-only build: no libc crate, so bind signal(2) directly.
    // SIG_ERR is ignored — worst case the handler is not installed and
    // SIGTERM keeps its default (terminate), which is still correct,
    // just not graceful.
    #[cfg(unix)]
    {
        const SIGTERM_NO: i32 = 15;
        const SIGINT_NO: i32 = 2;
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        let handler = on_sigterm as *const () as usize;
        unsafe {
            signal(SIGTERM_NO, handler);
            signal(SIGINT_NO, handler);
        }
    }
}

/// Run the service in the foreground until SIGTERM/SIGINT or
/// `POST /admin/shutdown`. Prints the bound address on stdout (so
/// scripts driving `--addr 127.0.0.1:0` learn the real port).
pub fn serve_blocking(cfg: &ServerConfig) -> io::Result<()> {
    install_sigterm_handler();
    let handle = start(cfg)?;
    println!("mempersp-server listening on http://{}", handle.addr());
    println!(
        "repository: {} | workers: {} | max-inflight: {} | timeout: {}",
        cfg.root.display(),
        cfg.effective_workers(),
        cfg.max_inflight.max(1),
        match cfg.timeout() {
            Some(t) => format!("{}ms", t.as_millis()),
            None => "off".to_string(),
        }
    );
    io::stdout().flush().ok();

    // Bridge the signal flag into the app's shutdown flag.
    while !handle.app().shutdown.load(Ordering::Acquire) {
        if SIGTERM.load(Ordering::Acquire) {
            handle.shutdown();
            break;
        }
        std::thread::sleep(POLL_INTERVAL);
    }
    handle.join();
    println!("mempersp-server drained, exiting");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn tmp_repo(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mempersp-srv-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        let status: u16 = raw.split(' ').nth(1).unwrap().parse().unwrap();
        let body = raw.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
        (status, body)
    }

    #[test]
    fn starts_serves_and_shuts_down() {
        let root = tmp_repo("basic");
        let cfg = ServerConfig {
            root: root.clone(),
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..ServerConfig::default()
        };
        let handle = start(&cfg).unwrap();
        let addr = handle.addr();
        assert_ne!(addr.port(), 0, "ephemeral port must be resolved");

        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(body, "{\"status\":\"ok\"}");

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);

        // Shut down via the admin endpoint and verify the loop exits.
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "POST /admin/shutdown HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n")
            .unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 200"));
        handle.join();

        // The listener is gone: new connections are refused (or reset).
        assert!(TcpStream::connect(addr).is_err() || {
            // A TIME_WAIT race can still let connect succeed; a read
            // must then fail or return EOF immediately.
            true
        });
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn malformed_request_line_gets_400() {
        let root = tmp_repo("malformed");
        let cfg = ServerConfig {
            root: root.clone(),
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            ..ServerConfig::default()
        };
        let handle = start(&cfg).unwrap();
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        write!(s, "gibberish\r\n\r\n").unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
        handle.shutdown();
        handle.join();
        std::fs::remove_dir_all(&root).ok();
    }
}
