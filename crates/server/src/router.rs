//! Endpoint dispatch and handlers.
//!
//! | method | path              | purpose                                   |
//! |--------|-------------------|-------------------------------------------|
//! | GET    | `/healthz`        | liveness                                  |
//! | GET    | `/metrics`        | Prometheus-style text exposition          |
//! | GET    | `/v1/traces`      | enumerate the repository, with metadata   |
//! | POST   | `/v1/query`       | predicate-pushdown event scan, paginated  |
//! | POST   | `/v1/fold`        | multi-region folding, memoized            |
//! | POST   | `/admin/shutdown` | graceful drain                            |
//!
//! Status mapping is uniform: invalid input `400`, unknown trace
//! `404`, wrong method `405`, overload `429` (decided at accept time,
//! not here), deadline `503`, corrupt store `502` with an fsck-style
//! damage summary, anything else `500`. Error bodies are always
//! `{"error": ...}` JSON.
//!
//! Fold responses are memoized by content digest; a repeat fold is
//! answered from the memo with the *byte-identical* body and an
//! `X-Memo: hit` header (the hit marker lives in a header precisely
//! so memoization can never change a body).

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mempersp_extrae::json::{event_to_json, query_from_json, query_to_json, scan_stats_to_json};
use mempersp_extrae::trace_source::TraceSource;
use mempersp_extrae::Query;
use mempersp_folding::{
    fold_regions_source, fold_request_digest, FitModel, FoldedRegion, FoldingConfig, Fnv64,
    RegionRequest,
};
use mempersp_store::{CancelToken, MpsSource};
use serde_json::{json, to_string, Value};

use crate::http::{Request, Response};
use crate::memo::FoldMemo;
use crate::metrics::Metrics;
use crate::repo::{trace_identity, CancellableSource, TraceRepo};

/// Hard cap on folding worker threads a client may request.
pub const MAX_FOLD_THREADS: usize = 16;
/// Hard cap on performance-series points a client may request.
pub const MAX_FOLD_POINTS: usize = 4096;
/// Default performance-series resolution.
pub const DEFAULT_FOLD_POINTS: usize = 64;

/// Everything the handlers share. One per server, behind an `Arc`.
pub struct App {
    pub repo: TraceRepo,
    pub metrics: Metrics,
    pub memo: FoldMemo,
    /// Per-request deadline; `None` disables it.
    pub timeout: Option<Duration>,
    /// Set by `/admin/shutdown` (and SIGTERM); the accept loop drains
    /// and exits once it flips.
    pub shutdown: Arc<AtomicBool>,
    /// Where a loopback connect can wake a blocking `accept()`; set by
    /// `start` once the listener is bound.
    wake: std::sync::OnceLock<std::net::SocketAddr>,
    pub started: Instant,
}

impl App {
    pub fn new(root: &Path, timeout: Option<Duration>, memo_cap: usize) -> io::Result<App> {
        Ok(App {
            repo: TraceRepo::new(root)?,
            metrics: Metrics::new(),
            memo: FoldMemo::new(memo_cap),
            timeout,
            shutdown: Arc::new(AtomicBool::new(false)),
            wake: std::sync::OnceLock::new(),
            started: Instant::now(),
        })
    }

    /// Record the bound address so [`App::request_shutdown`] can wake
    /// the accept loop out of its blocking `accept()`.
    pub fn set_wake_addr(&self, addr: std::net::SocketAddr) {
        let _ = self.wake.set(addr);
    }

    /// Flip the shutdown flag and poke the accept loop with a throwaway
    /// loopback connection so it notices immediately instead of waiting
    /// for the next real client.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(addr) = self.wake.get() {
            let mut addr = *addr;
            if addr.ip().is_unspecified() {
                addr.set_ip(if addr.is_ipv4() {
                    std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST)
                } else {
                    std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST)
                });
            }
            let _ = std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        }
    }

    fn cancel_token(&self) -> CancelToken {
        match self.timeout {
            Some(t) => CancelToken::with_timeout(t),
            None => CancelToken::new(),
        }
    }
}

fn error_json(status: u16, message: impl std::fmt::Display) -> Response {
    Response::json(status, to_string(&json!({ "error": message.to_string() })).unwrap())
}

/// Map a failed store operation to a response. `damage` carries the
/// store's fsck-style report when the reader is at hand.
fn io_error_response(app: &App, trace: Option<&str>, src: Option<&MpsSource>, e: &io::Error) -> Response {
    match e.kind() {
        io::ErrorKind::InvalidInput => error_json(400, e),
        io::ErrorKind::NotFound => error_json(404, e),
        io::ErrorKind::TimedOut | io::ErrorKind::Interrupted => {
            error_json(503, format!("request deadline exceeded: {e}"))
        }
        io::ErrorKind::InvalidData => {
            // Evict the damaged reader so a repaired/replaced store is
            // reopened fresh on the next request.
            if let Some(name) = trace {
                app.repo.evict(name);
            }
            let damage: Vec<Value> = src
                .map(|s| s.damage_report().into_iter().map(Value::String).collect())
                .unwrap_or_default();
            let body = json!({
                "error": format!("trace store is damaged: {e}"),
                "damage": Value::Array(damage),
            });
            Response::json(502, to_string(&body).unwrap())
        }
        _ => error_json(500, e),
    }
}

/// Dispatch one request. Returns the endpoint label (a static string
/// for metrics) and the response.
pub fn handle(app: &App, req: &Request) -> (&'static str, Response) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => ("/healthz", handle_healthz()),
        ("GET", "/metrics") => ("/metrics", handle_metrics(app)),
        ("GET", "/v1/traces") => ("/v1/traces", handle_traces(app)),
        ("POST", "/v1/query") => ("/v1/query", handle_query(app, req)),
        ("POST", "/v1/fold") => ("/v1/fold", handle_fold(app, req)),
        ("POST", "/admin/shutdown") => ("/admin/shutdown", handle_shutdown(app)),
        (_, "/healthz" | "/metrics" | "/v1/traces" | "/v1/query" | "/v1/fold" | "/admin/shutdown") => {
            ("(method)", error_json(405, format!("method {} not allowed here", req.method)))
        }
        _ => ("(unknown)", error_json(404, format!("no such endpoint {:?}", req.path))),
    }
}

fn handle_healthz() -> Response {
    Response::json(200, to_string(&json!({"status": "ok"})).unwrap())
}

fn handle_metrics(app: &App) -> Response {
    Response::text(200, app.metrics.render(app.started, app.repo.cache_stats(), app.memo.stats()))
}

fn handle_shutdown(app: &App) -> Response {
    app.request_shutdown();
    Response::json(200, to_string(&json!({"status": "draining"})).unwrap())
}

fn handle_traces(app: &App) -> Response {
    let names = match app.repo.list_names() {
        Ok(n) => n,
        Err(e) => return error_json(500, format!("listing repository: {e}")),
    };
    let mut traces = Vec::with_capacity(names.len());
    for name in names {
        // A damaged store must not take the whole listing down; it is
        // reported in place.
        match app.repo.lookup(&name) {
            Ok(src) => {
                let header = src.store_header();
                traces.push(json!({
                    "name": name,
                    "format": TraceSource::format_name(&*src),
                    "format_version": src.format_version(),
                    "num_events": src.num_events(),
                    "num_shards": src.num_shards(),
                    "num_cores": header.meta.num_cores,
                    "freq_mhz": header.meta.freq_mhz,
                    "description": header.meta.description.clone(),
                    "regions": header.region_names.len(),
                }));
            }
            Err(e) => {
                app.repo.evict(&name);
                traces.push(json!({ "name": name, "error": e.to_string() }));
            }
        }
    }
    let count = traces.len();
    let body = json!({ "count": count, "traces": Value::Array(traces) });
    Response::json(200, to_string(&body).unwrap())
}

/// Parse the request body as a JSON object, or answer `400`.
fn parse_object(req: &Request) -> Result<Vec<(String, Value)>, Response> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| error_json(400, "request body is not UTF-8"))?;
    if text.trim().is_empty() {
        return Err(error_json(400, "request body must be a JSON object"));
    }
    let value = serde_json::from_str(text).map_err(|e| error_json(400, e))?;
    match value.as_object() {
        Some(obj) => Ok(obj.clone()),
        None => Err(error_json(400, "request body must be a JSON object")),
    }
}

fn field_usize(
    val: &Value,
    key: &str,
    range: std::ops::RangeInclusive<usize>,
) -> Result<usize, Response> {
    let n = val
        .as_u64()
        .ok_or_else(|| error_json(400, format!("{key:?} must be a non-negative integer")))?;
    let n = usize::try_from(n)
        .map_err(|_| error_json(400, format!("{key:?} is out of range")))?;
    if !range.contains(&n) {
        return Err(error_json(
            400,
            format!("{key:?} must be between {} and {}", range.start(), range.end()),
        ));
    }
    Ok(n)
}

fn handle_query(app: &App, req: &Request) -> Response {
    let obj = match parse_object(req) {
        Ok(o) => o,
        Err(resp) => return resp,
    };
    let mut trace_name: Option<String> = None;
    let mut query = Query::all();
    let mut limit: Option<usize> = None;
    let mut offset = 0usize;
    for (key, val) in &obj {
        match key.as_str() {
            "trace" => match val.as_str() {
                Some(s) => trace_name = Some(s.to_string()),
                None => return error_json(400, "\"trace\" must be a string"),
            },
            "query" => match query_from_json(val) {
                Ok(q) => query = q,
                Err(msg) => return error_json(400, msg),
            },
            "limit" => match field_usize(val, "limit", 0..=usize::MAX) {
                Ok(n) => limit = Some(n),
                Err(resp) => return resp,
            },
            "offset" => match field_usize(val, "offset", 0..=usize::MAX) {
                Ok(n) => offset = n,
                Err(resp) => return resp,
            },
            other => return error_json(400, format!("unknown query-request key {other:?}")),
        }
    }
    let Some(name) = trace_name else {
        return error_json(400, "missing required key \"trace\"");
    };
    let src = match app.repo.lookup(&name) {
        Ok(s) => s,
        Err(e) => return io_error_response(app, Some(&name), None, &e),
    };

    let cancel = app.cancel_token();
    let (events, stats) = match src.query_cancel(&query, &cancel) {
        Ok(r) => r,
        Err(e) => return io_error_response(app, Some(&name), Some(&src), &e),
    };

    let total = events.len();
    let window: Vec<Value> = events
        .iter()
        .skip(offset)
        .take(limit.unwrap_or(usize::MAX))
        .map(event_to_json)
        .collect();
    let returned = window.len();
    // Echo the *normalized* query (what actually ran) so clients can
    // diff their intent against the server's interpretation.
    let body = json!({
        "trace": name,
        "query": query_to_json(&query),
        "total_matched": total,
        "offset": offset,
        "limit": match limit { Some(n) => json!(n), None => Value::Null },
        "returned": returned,
        "events": Value::Array(window),
        "stats": scan_stats_to_json(&stats),
    });
    Response::json(200, to_string(&body).unwrap())
}

fn fit_from_str(s: &str) -> Result<FitModel, Response> {
    match s {
        "isotonic" => Ok(FitModel::Isotonic),
        "binned_mean" => Ok(FitModel::BinnedMean),
        other => Err(error_json(
            400,
            format!("unknown fit model {other:?}; expected \"isotonic\" or \"binned_mean\""),
        )),
    }
}

fn folded_region_to_json(fr: &FoldedRegion, points: usize) -> Value {
    let counters: Vec<Value> = fr
        .counters
        .iter()
        .map(|c| {
            json!({
                "kind": c.kind.label(),
                "avg_total": c.avg_total,
                "points": c.points,
            })
        })
        .collect();
    let performance: Vec<Value> = fr
        .performance_series(points)
        .iter()
        .map(|p| {
            let per_instruction: Vec<Value> =
                p.per_instruction.iter().map(|v| json!(*v)).collect();
            json!({
                "x": p.x,
                "t_ms": p.t_ms,
                "mips": p.mips,
                "ipc": p.ipc,
                "per_instruction": Value::Array(per_instruction),
            })
        })
        .collect();
    json!({
        "region": fr.region.clone(),
        "instances_used": fr.instances_used,
        "instances_rejected": fr.instances_rejected,
        "avg_duration_cycles": fr.avg_duration_cycles,
        "duration_ms": fr.duration_ms(),
        "freq_mhz": fr.freq_mhz,
        "mean_mips": fr.mean_mips(),
        "counters": Value::Array(counters),
        "performance": Value::Array(performance),
    })
}

fn handle_fold(app: &App, req: &Request) -> Response {
    let obj = match parse_object(req) {
        Ok(o) => o,
        Err(resp) => return resp,
    };
    let mut trace_name: Option<String> = None;
    let mut regions: Option<Vec<String>> = None;
    let mut cfg = FoldingConfig::default();
    let mut points = DEFAULT_FOLD_POINTS;
    let mut threads = 1usize;
    for (key, val) in &obj {
        match key.as_str() {
            "trace" => match val.as_str() {
                Some(s) => trace_name = Some(s.to_string()),
                None => return error_json(400, "\"trace\" must be a string"),
            },
            "regions" => {
                let Some(arr) = val.as_array() else {
                    return error_json(400, "\"regions\" must be an array of region names");
                };
                let mut names = Vec::with_capacity(arr.len());
                for v in arr {
                    match v.as_str() {
                        Some(s) => names.push(s.to_string()),
                        None => return error_json(400, "\"regions\" must contain only strings"),
                    }
                }
                if names.is_empty() {
                    return error_json(400, "\"regions\" must not be empty");
                }
                regions = Some(names);
            }
            "bins" => match field_usize(val, "bins", 2..=4096) {
                Ok(n) => cfg.bins = n,
                Err(resp) => return resp,
            },
            "min_instances" => match field_usize(val, "min_instances", 1..=usize::MAX) {
                Ok(n) => cfg.min_instances = n,
                Err(resp) => return resp,
            },
            "fit" => match val.as_str() {
                Some(s) => match fit_from_str(s) {
                    Ok(f) => cfg.fit = f,
                    Err(resp) => return resp,
                },
                None => return error_json(400, "\"fit\" must be a string"),
            },
            "points" => match field_usize(val, "points", 2..=MAX_FOLD_POINTS) {
                Ok(n) => points = n,
                Err(resp) => return resp,
            },
            "threads" => match field_usize(val, "threads", 1..=MAX_FOLD_THREADS) {
                Ok(n) => threads = n,
                Err(resp) => return resp,
            },
            other => return error_json(400, format!("unknown fold-request key {other:?}")),
        }
    }
    let Some(name) = trace_name else {
        return error_json(400, "missing required key \"trace\"");
    };
    let src = match app.repo.lookup(&name) {
        Ok(s) => s,
        Err(e) => return io_error_response(app, Some(&name), None, &e),
    };

    // Default region set: every region the trace knows, in header
    // order — mirrors `mempersp fold-multi <trace> all`.
    let region_names = match regions {
        Some(r) => r,
        None => src.store_header().region_names.clone(),
    };
    if region_names.is_empty() {
        return error_json(400, format!("trace {name:?} has no instrumented regions"));
    }
    let requests: Vec<RegionRequest> =
        region_names.iter().map(|r| RegionRequest::with_cfg(r, cfg)).collect();

    // Memo key: trace identity + full request set + series resolution.
    // Thread count is deliberately excluded — the folding engine is
    // deterministic at any thread count, so the body cannot differ.
    let mut key = Fnv64::new();
    key.write_u64(fold_request_digest(&trace_identity(&name, &src), &requests));
    key.write_u64(points as u64);
    let digest = key.finish();
    if let Some(body) = app.memo.get(digest) {
        return Response::json(200, (*body).clone()).with_header("X-Memo", "hit");
    }

    let cancel = app.cancel_token();
    let mut csrc = CancellableSource::new(&src, &cancel);
    let outcome = fold_regions_source(&mut csrc, &requests, threads);
    let last_kind = csrc.last_err_kind();
    let (folded, stats) = match outcome {
        Ok(r) => r,
        Err(e) => {
            // The engine flattens I/O failures to strings; recover the
            // kind recorded by the source adapter so deadlines stay
            // 503 and corruption stays 502.
            let kind = last_kind.unwrap_or(io::ErrorKind::Other);
            return io_error_response(
                app,
                Some(&name),
                Some(&src),
                &io::Error::new(kind, e.to_string()),
            );
        }
    };

    let regions_json: Vec<Value> = requests
        .iter()
        .zip(&folded)
        .map(|(req, result)| match result {
            Ok(fr) => folded_region_to_json(fr, points),
            Err(e) => json!({ "region": req.region.clone(), "error": e.to_string() }),
        })
        .collect();
    let body = json!({
        "trace": name,
        "points": points,
        "regions": Value::Array(regions_json),
        "stats": scan_stats_to_json(&stats),
    });
    let text = Arc::new(to_string(&body).unwrap());
    app.memo.insert(digest, Arc::clone(&text));
    Response::json(200, (*text).clone()).with_header("X-Memo", "miss")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> App {
        let dir = std::env::temp_dir().join(format!("mempersp-router-{:p}", &()));
        std::fs::create_dir_all(&dir).unwrap();
        App::new(&dir, None, 8).unwrap()
    }

    fn request(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            query_string: String::new(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn healthz_is_ok() {
        let (endpoint, resp) = handle(&app(), &request("GET", "/healthz", ""));
        assert_eq!(endpoint, "/healthz");
        assert_eq!(resp.status, 200);
        assert_eq!(String::from_utf8(resp.body).unwrap(), "{\"status\":\"ok\"}");
    }

    #[test]
    fn unknown_path_is_404_and_wrong_method_is_405() {
        let app = app();
        let (_, resp) = handle(&app, &request("GET", "/nope", ""));
        assert_eq!(resp.status, 404);
        let (_, resp) = handle(&app, &request("DELETE", "/v1/query", ""));
        assert_eq!(resp.status, 405);
        let (_, resp) = handle(&app, &request("POST", "/healthz", ""));
        assert_eq!(resp.status, 405);
    }

    #[test]
    fn malformed_bodies_are_400_with_reasons() {
        let app = app();
        for (body, needle) in [
            ("", "JSON object"),
            ("{not json", "invalid JSON"),
            ("[1,2]", "JSON object"),
            ("{\"trace\":42}", "must be a string"),
            ("{\"bogus\":1}", "unknown query-request key"),
            ("{}", "missing required key"),
            ("{\"trace\":\"x.mps\",\"limit\":-1}", "non-negative"),
            ("{\"trace\":\"x.mps\",\"query\":{\"flub\":1}}", "unknown query key"),
        ] {
            let (_, resp) = handle(&app, &request("POST", "/v1/query", body));
            assert_eq!(resp.status, 400, "{body}");
            let text = String::from_utf8(resp.body).unwrap();
            assert!(text.contains(needle), "{body}: {text}");
        }
    }

    #[test]
    fn unknown_trace_is_404_and_bad_name_is_400() {
        let app = app();
        let (_, resp) =
            handle(&app, &request("POST", "/v1/query", "{\"trace\":\"ghost.mps\"}"));
        assert_eq!(resp.status, 404);
        let (_, resp) =
            handle(&app, &request("POST", "/v1/fold", "{\"trace\":\"../../etc/x.mps\"}"));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn fold_input_validation() {
        let app = app();
        for (body, needle) in [
            ("{\"trace\":\"x.mps\",\"regions\":[]}", "must not be empty"),
            ("{\"trace\":\"x.mps\",\"regions\":[3]}", "only strings"),
            ("{\"trace\":\"x.mps\",\"fit\":\"cubic\"}", "unknown fit model"),
            ("{\"trace\":\"x.mps\",\"points\":1}", "between 2 and"),
            ("{\"trace\":\"x.mps\",\"threads\":9999}", "between 1 and"),
        ] {
            let (_, resp) = handle(&app, &request("POST", "/v1/fold", body));
            assert_eq!(resp.status, 400, "{body}");
            assert!(String::from_utf8(resp.body).unwrap().contains(needle), "{body}");
        }
    }

    #[test]
    fn shutdown_flips_the_flag_and_traces_lists_empty_repo() {
        let app = app();
        assert!(!app.shutdown.load(Ordering::Acquire));
        let (_, resp) = handle(&app, &request("POST", "/admin/shutdown", ""));
        assert_eq!(resp.status, 200);
        assert!(app.shutdown.load(Ordering::Acquire));

        let (_, resp) = handle(&app, &request("GET", "/v1/traces", ""));
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8(resp.body).unwrap().contains("\"count\":0"));
    }

    #[test]
    fn metrics_renders_without_traffic() {
        let (_, resp) = handle(&app(), &request("GET", "/metrics", ""));
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("mempersp_uptime_seconds"));
        assert!(text.contains("mempersp_fold_memo_entries 0"));
    }
}
