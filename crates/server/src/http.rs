//! Minimal, robust HTTP/1.1: a request parser and a
//! chunked/Content-Length responder over plain `Read`/`Write`.
//!
//! The service speaks one request per connection (`Connection: close`
//! on every response) — clients here are analysis scripts and `curl`,
//! not browsers holding keep-alive pools, and one-shot connections
//! make admission control exact: one accepted connection == one
//! in-flight request.
//!
//! Hard limits protect the worker pool from hostile or broken peers:
//! the request head (request line + headers) is capped, the body is
//! capped, and both are enforced *while reading* — a peer streaming an
//! endless header section is cut off at the cap, not buffered.
//!
//! Parse failures are `io::Error`s with `ErrorKind::InvalidData` and a
//! human-readable reason; the router maps them to `400`. Read
//! timeouts surface as `TimedOut`/`WouldBlock` from the socket.

use std::io::{self, Read, Write};

/// Request head cap: request line + all headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Request body cap. Query/fold bodies are small JSON; 2 MiB leaves
/// room for huge explicit core lists without letting a peer balloon
/// worker memory.
pub const MAX_BODY_BYTES: usize = 2 * 1024 * 1024;
/// Response bodies above this are sent with chunked transfer encoding
/// (each chunk a bounded write), below it with Content-Length.
pub const CHUNK_THRESHOLD: usize = 64 * 1024;
/// Chunk size of a chunked response.
pub const CHUNK_BYTES: usize = 64 * 1024;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    /// Path with the query string stripped.
    pub path: String,
    /// Raw query string ("" when absent).
    pub query_string: String,
    /// Header names lowercased; values trimmed.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }
}

/// Read and parse one request. Enforces the head/body caps while
/// reading. `Content-Length` bodies only — a request with
/// `Transfer-Encoding` is rejected (the *responder* speaks chunked,
/// the clients this service has don't need to).
pub fn read_request(stream: &mut dyn Read) -> io::Result<Request> {
    let head = read_head(stream)?;
    let text = std::str::from_utf8(&head.bytes[..head.len])
        .map_err(|_| bad("request head is not UTF-8"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or_else(|| bad("empty request"))?;

    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().ok_or_else(|| bad("malformed request line"))?;
    let version = parts.next().ok_or_else(|| bad("malformed request line"))?;
    if parts.next().is_some() {
        return Err(bad("malformed request line"));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(bad(format!("malformed method {method:?}")));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(bad(format!("unsupported protocol version {version:?}")));
    }
    if !target.starts_with('/') {
        return Err(bad(format!("request target must be an absolute path, got {target:?}")));
    }
    let (path, query_string) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // the blank line terminating the head
        }
        let (name, value) = line.split_once(':').ok_or_else(|| bad("malformed header line"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(bad("malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let req = Request { method, path, query_string, headers, body: Vec::new() };
    if req.header("transfer-encoding").is_some() {
        return Err(bad("chunked request bodies are not supported; send Content-Length"));
    }
    let content_length = match req.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| bad(format!("malformed Content-Length {v:?}")))?,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(bad(format!(
            "request body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }

    let mut body = head.overflow;
    if body.len() > content_length {
        return Err(bad("more body bytes than Content-Length"));
    }
    let mut remaining = content_length - body.len();
    body.reserve(remaining);
    let mut buf = [0u8; 8 * 1024];
    while remaining > 0 {
        let want = remaining.min(buf.len());
        let n = stream.read(&mut buf[..want])?;
        if n == 0 {
            return Err(bad("connection closed mid-body"));
        }
        body.extend_from_slice(&buf[..n]);
        remaining -= n;
    }
    Ok(Request { body, ..req })
}

struct Head {
    bytes: Vec<u8>,
    /// Length of the head including the terminating `\r\n\r\n`.
    len: usize,
    /// Bytes read past the head (the start of the body).
    overflow: Vec<u8>,
}

fn read_head(stream: &mut dyn Read) -> io::Result<Head> {
    let mut bytes = Vec::with_capacity(1024);
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            if bytes.is_empty() {
                // Peer connected and closed without sending anything.
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "empty connection"));
            }
            return Err(bad("connection closed before the request head completed"));
        }
        bytes.extend_from_slice(&buf[..n]);
        // Search only the tail (the terminator may straddle reads).
        let start = bytes.len().saturating_sub(n + 3);
        if let Some(at) = find_terminator(&bytes[start..]) {
            let len = start + at + 4;
            let overflow = bytes[len..].to_vec();
            return Ok(Head { bytes, len, overflow });
        }
        if bytes.len() > MAX_HEAD_BYTES {
            return Err(bad(format!(
                "request head exceeds the {MAX_HEAD_BYTES}-byte limit"
            )));
        }
    }
}

fn find_terminator(window: &[u8]) -> Option<usize> {
    window.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Extra headers, e.g. `("X-Memo", "hit")`.
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            extra_headers: Vec::new(),
        }
    }

    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
            extra_headers: Vec::new(),
        }
    }

    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.extra_headers.push((name.to_string(), value.to_string()));
        self
    }
}

pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize `resp`: Content-Length framing for small bodies, chunked
/// transfer encoding above [`CHUNK_THRESHOLD`]. Returns the total
/// bytes written (head + body + framing).
pub fn write_response(stream: &mut dyn Write, resp: &Response) -> io::Result<u64> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nConnection: close\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type
    );
    for (name, value) in &resp.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    let mut written = 0u64;
    if resp.body.len() > CHUNK_THRESHOLD {
        head.push_str("Transfer-Encoding: chunked\r\n\r\n");
        stream.write_all(head.as_bytes())?;
        written += head.len() as u64;
        for chunk in resp.body.chunks(CHUNK_BYTES) {
            let size_line = format!("{:x}\r\n", chunk.len());
            stream.write_all(size_line.as_bytes())?;
            stream.write_all(chunk)?;
            stream.write_all(b"\r\n")?;
            written += size_line.len() as u64 + chunk.len() as u64 + 2;
        }
        stream.write_all(b"0\r\n\r\n")?;
        written += 5;
    } else {
        head.push_str(&format!("Content-Length: {}\r\n\r\n", resp.body.len()));
        stream.write_all(head.as_bytes())?;
        stream.write_all(&resp.body)?;
        written += head.len() as u64 + resp.body.len() as u64;
    }
    stream.flush()?;
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> io::Result<Request> {
        let mut cursor = raw;
        read_request(&mut cursor)
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /v1/query HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}";
        let r = parse(raw).unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/v1/query");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.body, b"{\"a\":1}");
    }

    #[test]
    fn parses_a_get_with_query_string() {
        let r = parse(b"GET /v1/traces?refresh=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.path, "/v1/traces");
        assert_eq!(r.query_string, "refresh=1");
        assert!(r.body.is_empty());
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let r = parse(b"GET / HTTP/1.1\r\nX-ThInG: v\r\n\r\n").unwrap();
        assert_eq!(r.header("x-thing"), Some("v"));
        assert_eq!(r.header("X-THING"), Some("v"));
    }

    #[test]
    fn head_split_across_reads_is_reassembled() {
        // A reader that returns one byte at a time forces the
        // terminator to straddle read boundaries.
        struct OneByte<'a>(&'a [u8]);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.0.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let mut r = OneByte(b"GET /x HTTP/1.1\r\nA: b\r\n\r\n");
        let req = read_request(&mut r).unwrap();
        assert_eq!(req.path, "/x");
        assert_eq!(req.header("a"), Some("b"));
    }

    #[test]
    fn malformed_requests_error_with_reasons() {
        for (raw, needle) in [
            (&b"FLOOP\r\n\r\n"[..], "request line"),
            (&b"GET /x HTTP/9.9\r\n\r\n"[..], "protocol version"),
            (&b"GET x HTTP/1.1\r\n\r\n"[..], "absolute path"),
            (&b"get /x HTTP/1.1\r\n\r\n"[..], "method"),
            (&b"GET /x HTTP/1.1\r\nbroken line\r\n\r\n"[..], "header"),
            (&b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..], "Content-Length"),
            (&b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..], "chunked"),
            (&b"POST /x HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort"[..], "closed mid-body"),
        ] {
            let err = parse(raw).expect_err(&String::from_utf8_lossy(raw));
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            assert!(err.to_string().contains(needle), "{raw:?}: {err}");
        }
    }

    #[test]
    fn oversized_head_and_body_are_rejected() {
        let mut huge = b"GET /x HTTP/1.1\r\n".to_vec();
        huge.extend(std::iter::repeat_n(b"X-Pad: 0123456789\r\n".as_slice(), 2000).flatten());
        huge.extend_from_slice(b"\r\n");
        assert!(parse(&huge).unwrap_err().to_string().contains("head exceeds"));

        let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(parse(raw.as_bytes()).unwrap_err().to_string().contains("exceeds"));
    }

    #[test]
    fn small_responses_use_content_length() {
        let mut out = Vec::new();
        let n = write_response(&mut out, &Response::json(200, "{\"ok\":true}".into())).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
        assert_eq!(n as usize, text.len());
    }

    #[test]
    fn large_responses_are_chunked_and_reassemble() {
        let body: String = "x".repeat(CHUNK_THRESHOLD + CHUNK_BYTES + 17);
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, body.clone())).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(!text.contains("Content-Length"));
        // De-chunk and compare.
        let payload = text.split("\r\n\r\n").nth(1).unwrap();
        let mut rest = payload;
        let mut got = String::new();
        while let Some((size_line, tail)) = rest.split_once("\r\n") {
            let size = usize::from_str_radix(size_line, 16).unwrap();
            if size == 0 {
                break;
            }
            got.push_str(&tail[..size]);
            rest = &tail[size + 2..];
        }
        assert_eq!(got, body);
    }

    #[test]
    fn extra_headers_are_emitted() {
        let mut out = Vec::new();
        let resp = Response::json(200, "{}".into()).with_header("X-Memo", "hit");
        write_response(&mut out, &resp).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("X-Memo: hit\r\n"));
    }
}
