//! Service metrics with a Prometheus-style text exposition.
//!
//! Everything on the hot path is an atomic or a short-held mutex over
//! a small map; rendering happens only when `/metrics` is scraped.
//! Block-cache and fold-memo counters live with their owners (the
//! store readers and [`crate::memo::FoldMemo`]) and are passed in at
//! render time, so this module never reaches into the repository.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use mempersp_store::CacheStats;

use crate::memo::MemoStats;

/// Latency histogram bucket upper bounds, in seconds. Cumulative
/// (Prometheus `le` semantics); an implicit `+Inf` bucket follows.
pub const LATENCY_BOUNDS_S: [f64; 8] =
    [0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0];

#[derive(Debug, Default, Clone)]
struct Histogram {
    /// Non-cumulative counts per bound, plus the overflow bucket.
    counts: [u64; LATENCY_BOUNDS_S.len() + 1],
    sum_s: f64,
    total: u64,
}

impl Histogram {
    fn observe(&mut self, latency: Duration) {
        let s = latency.as_secs_f64();
        let slot = LATENCY_BOUNDS_S
            .iter()
            .position(|&b| s <= b)
            .unwrap_or(LATENCY_BOUNDS_S.len());
        self.counts[slot] += 1;
        self.sum_s += s;
        self.total += 1;
    }
}

/// Shared service counters. One instance per server, behind an `Arc`.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests currently being served (admitted, not yet responded).
    inflight: AtomicU64,
    /// Connections turned away at the door with `429`.
    rejected: AtomicU64,
    /// Response bytes written, including heads and chunk framing.
    bytes_served: AtomicU64,
    /// `(endpoint, status) -> count`.
    requests: Mutex<HashMap<(&'static str, u16), u64>>,
    /// Per-endpoint latency histograms.
    latency: Mutex<HashMap<&'static str, Histogram>>,
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Admission: try to occupy one of `max_inflight` slots. On `true`
    /// the caller MUST balance with [`Metrics::exit`].
    pub fn try_enter(&self, max_inflight: u64) -> bool {
        self.inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                if cur < max_inflight {
                    Some(cur + 1)
                } else {
                    None
                }
            })
            .is_ok()
    }

    pub fn exit(&self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
    }

    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Acquire)
    }

    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one completed request.
    pub fn record(&self, endpoint: &'static str, status: u16, latency: Duration, bytes: u64) {
        self.bytes_served.fetch_add(bytes, Ordering::Relaxed);
        *self.requests.lock().expect("metrics poisoned").entry((endpoint, status)).or_insert(0) +=
            1;
        self.latency
            .lock()
            .expect("metrics poisoned")
            .entry(endpoint)
            .or_default()
            .observe(latency);
    }

    /// Total count for one `(endpoint, status)` cell (tests, smoke).
    pub fn request_count(&self, endpoint: &str, status: u16) -> u64 {
        self.requests
            .lock()
            .expect("metrics poisoned")
            .iter()
            .filter(|((e, s), _)| *e == endpoint && *s == status)
            .map(|(_, n)| *n)
            .sum()
    }

    /// Render the text exposition. `started` is the server's launch
    /// instant; cache and memo counters come from their owners.
    pub fn render(&self, started: Instant, cache: CacheStats, memo: MemoStats) -> String {
        fn gauge(out: &mut String, name: &str, help: &str, value: f64) {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
            ));
        }
        fn counter(out: &mut String, name: &str, help: &str, value: u64) {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        }

        let mut out = String::with_capacity(2048);
        gauge(
            &mut out,
            "mempersp_uptime_seconds",
            "Seconds since the service started.",
            started.elapsed().as_secs_f64(),
        );
        gauge(
            &mut out,
            "mempersp_inflight_requests",
            "Requests admitted and not yet answered.",
            self.inflight.load(Ordering::Acquire) as f64,
        );
        counter(
            &mut out,
            "mempersp_rejected_total",
            "Connections rejected with 429 at admission.",
            self.rejected.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "mempersp_bytes_served_total",
            "Response bytes written (heads, bodies and chunk framing).",
            self.bytes_served.load(Ordering::Relaxed),
        );
        counter(&mut out, "mempersp_block_cache_hits_total", "Block-cache hits across all open stores.", cache.hits);
        counter(&mut out, "mempersp_block_cache_misses_total", "Block-cache misses across all open stores.", cache.misses);
        counter(&mut out, "mempersp_block_cache_evictions_total", "Block-cache evictions across all open stores.", cache.evictions);
        counter(&mut out, "mempersp_block_cache_insertions_total", "Block-cache insertions across all open stores.", cache.insertions);
        counter(&mut out, "mempersp_fold_memo_hits_total", "Fold requests answered from the memo cache.", memo.hits);
        counter(&mut out, "mempersp_fold_memo_misses_total", "Fold requests computed from the trace.", memo.misses);
        gauge(
            &mut out,
            "mempersp_fold_memo_entries",
            "Fold results currently memoized.",
            memo.entries as f64,
        );

        // Info-style gauge: which stream-vbyte decode kernel this
        // process selected at startup (avx2 / ssse3 / scalar).
        out.push_str(
            "# HELP mempersp_decode_simd Active stream-vbyte decode kernel (constant 1, level in the label).\n",
        );
        out.push_str("# TYPE mempersp_decode_simd gauge\n");
        out.push_str(&format!(
            "mempersp_decode_simd{{level=\"{}\"}} 1\n",
            mempersp_store::simd_level_name()
        ));

        out.push_str("# HELP mempersp_requests_total Requests served, by endpoint and status.\n");
        out.push_str("# TYPE mempersp_requests_total counter\n");
        let mut cells: Vec<((&'static str, u16), u64)> = self
            .requests
            .lock()
            .expect("metrics poisoned")
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect();
        cells.sort();
        for ((endpoint, status), n) in cells {
            out.push_str(&format!(
                "mempersp_requests_total{{endpoint=\"{endpoint}\",status=\"{status}\"}} {n}\n"
            ));
        }

        out.push_str(
            "# HELP mempersp_request_latency_seconds Request latency, by endpoint.\n",
        );
        out.push_str("# TYPE mempersp_request_latency_seconds histogram\n");
        let mut hists: Vec<(&'static str, Histogram)> = self
            .latency
            .lock()
            .expect("metrics poisoned")
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        hists.sort_by_key(|(e, _)| *e);
        for (endpoint, h) in hists {
            let mut cumulative = 0u64;
            for (i, bound) in LATENCY_BOUNDS_S.iter().enumerate() {
                cumulative += h.counts[i];
                out.push_str(&format!(
                    "mempersp_request_latency_seconds_bucket{{endpoint=\"{endpoint}\",le=\"{bound}\"}} {cumulative}\n"
                ));
            }
            out.push_str(&format!(
                "mempersp_request_latency_seconds_bucket{{endpoint=\"{endpoint}\",le=\"+Inf\"}} {}\n",
                h.total
            ));
            out.push_str(&format!(
                "mempersp_request_latency_seconds_sum{{endpoint=\"{endpoint}\"}} {}\n",
                h.sum_s
            ));
            out.push_str(&format!(
                "mempersp_request_latency_seconds_count{{endpoint=\"{endpoint}\"}} {}\n",
                h.total
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_honors_the_cap() {
        let m = Metrics::new();
        assert!(m.try_enter(2));
        assert!(m.try_enter(2));
        assert!(!m.try_enter(2));
        m.exit();
        assert!(m.try_enter(2));
        assert_eq!(m.inflight(), 2);
    }

    #[test]
    fn render_contains_every_family() {
        let m = Metrics::new();
        m.record("/v1/query", 200, Duration::from_millis(3), 512);
        m.record("/v1/query", 400, Duration::from_micros(80), 64);
        m.record_rejected();
        let text = m.render(
            Instant::now(),
            CacheStats { hits: 7, misses: 2, evictions: 1, insertions: 2 },
            MemoStats { hits: 4, misses: 1, entries: 1 },
        );
        for needle in [
            "mempersp_uptime_seconds",
            "mempersp_inflight_requests 0",
            "mempersp_rejected_total 1",
            "mempersp_bytes_served_total 576",
            "mempersp_block_cache_hits_total 7",
            "mempersp_block_cache_evictions_total 1",
            "mempersp_fold_memo_hits_total 4",
            "mempersp_fold_memo_entries 1",
            "mempersp_decode_simd{level=\"",
            "mempersp_requests_total{endpoint=\"/v1/query\",status=\"200\"} 1",
            "mempersp_requests_total{endpoint=\"/v1/query\",status=\"400\"} 1",
            "mempersp_request_latency_seconds_bucket{endpoint=\"/v1/query\",le=\"+Inf\"} 2",
            "mempersp_request_latency_seconds_count{endpoint=\"/v1/query\"} 2",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut h = Histogram::default();
        h.observe(Duration::from_micros(100)); // <= 0.0005
        h.observe(Duration::from_millis(2)); // <= 0.005
        h.observe(Duration::from_secs(5)); // +Inf
        assert_eq!(h.total, 3);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[2], 1);
        assert_eq!(h.counts[LATENCY_BOUNDS_S.len()], 1);
    }

    #[test]
    fn request_count_sums_cells() {
        let m = Metrics::new();
        m.record("/healthz", 200, Duration::ZERO, 1);
        m.record("/healthz", 200, Duration::ZERO, 1);
        assert_eq!(m.request_count("/healthz", 200), 2);
        assert_eq!(m.request_count("/healthz", 404), 0);
    }
}
