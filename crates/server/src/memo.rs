//! Fold-result memoization.
//!
//! Folding is the service's expensive operation — two full predicate
//! scans plus the fitting pipeline — while its result for a given
//! (trace identity, region set, config) is immutable: stores are
//! write-once and the engine is deterministic at any thread count.
//! So the finished *response body* is cached verbatim, keyed by the
//! request digest ([`mempersp_folding::fold_request_digest`]), and a
//! repeat fold costs one hash and one map probe.
//!
//! Bodies are shared as `Arc<String>` so a hit never copies the
//! (potentially large) JSON. The map is LRU-bounded: fold responses
//! for many-region traces can reach megabytes, and an unbounded memo
//! would be a slow memory leak in a long-running service.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Snapshot of the memo counters, consumed by `/metrics` and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: usize,
}

#[derive(Default)]
struct Inner {
    /// `digest -> (last-use stamp, body)`.
    map: HashMap<u64, (u64, Arc<String>)>,
    tick: u64,
}

/// A bounded, thread-safe memo of finished fold response bodies.
pub struct FoldMemo {
    cap: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl FoldMemo {
    /// `cap` = maximum number of memoized bodies (≥ 1).
    pub fn new(cap: usize) -> FoldMemo {
        FoldMemo {
            cap: cap.max(1),
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up a finished body. Counts a hit or a miss.
    pub fn get(&self, digest: u64) -> Option<Arc<String>> {
        let mut inner = self.inner.lock().expect("memo poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&digest) {
            Some((stamp, body)) => {
                *stamp = tick;
                let body = Arc::clone(body);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(body)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a finished body, evicting the least-recently-used entry
    /// at capacity.
    pub fn insert(&self, digest: u64, body: Arc<String>) {
        let mut inner = self.inner.lock().expect("memo poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&digest) && inner.map.len() >= self.cap {
            if let Some(&victim) =
                inner.map.iter().min_by_key(|(_, (stamp, _))| *stamp).map(|(k, _)| k)
            {
                inner.map.remove(&victim);
            }
        }
        inner.map.insert(digest, (tick, body));
    }

    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.inner.lock().expect("memo poisoned").map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_the_same_body() {
        let memo = FoldMemo::new(4);
        assert!(memo.get(1).is_none());
        memo.insert(1, Arc::new("body".to_string()));
        let got = memo.get(1).unwrap();
        assert_eq!(*got, "body");
        assert_eq!(memo.stats(), MemoStats { hits: 1, misses: 1, entries: 1 });
    }

    #[test]
    fn evicts_least_recently_used_at_capacity() {
        let memo = FoldMemo::new(2);
        memo.insert(1, Arc::new("a".into()));
        memo.insert(2, Arc::new("b".into()));
        memo.get(1); // 2 is now the LRU
        memo.insert(3, Arc::new("c".into()));
        assert!(memo.get(1).is_some());
        assert!(memo.get(2).is_none(), "LRU entry should have been evicted");
        assert!(memo.get(3).is_some());
        assert_eq!(memo.stats().entries, 2);
    }

    #[test]
    fn reinsert_does_not_evict() {
        let memo = FoldMemo::new(2);
        memo.insert(1, Arc::new("a".into()));
        memo.insert(2, Arc::new("b".into()));
        memo.insert(2, Arc::new("b2".into()));
        assert_eq!(*memo.get(2).unwrap(), "b2");
        assert!(memo.get(1).is_some());
    }
}
