//! The trace repository: a directory of `.mps` files and `.mps.d`
//! sharded stores served by shared readers.
//!
//! Every store is opened at most once and kept behind an
//! `Arc<MpsSource>`; all requests touching the same trace share one
//! reader and therefore one sharded block cache — the whole point of
//! running a resident service instead of per-query CLI invocations.
//! Readers are never mutated (queries take `&self`), so no lock is
//! held while scanning; the `RwLock` only guards the name → reader
//! map.
//!
//! Trace *names* are client input and are validated strictly: a name
//! must be a single path component (no separators, no `..`, nothing
//! hidden) with a store extension. Everything else is rejected before
//! it reaches the filesystem, so the service can never be walked out
//! of its root.

use std::collections::HashMap;
use std::io::{self, Read};
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

use mempersp_extrae::trace_source::{ScanStats, TraceSource};
use mempersp_extrae::{Query, Trace, TraceEvent};
use mempersp_store::{CacheStats, CancelToken, MpsSource, RecoveryMode};

fn bad_name(name: &str, why: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, format!("invalid trace name {name:?}: {why}"))
}

/// Validate a client-supplied trace name. Returns `InvalidInput`
/// (mapped to `400`) on anything that is not a plain store name.
pub fn validate_name(name: &str) -> io::Result<()> {
    if name.is_empty() {
        return Err(bad_name(name, "empty"));
    }
    if name.len() > 255 {
        return Err(bad_name(name, "longer than 255 bytes"));
    }
    if name.contains('/') || name.contains('\\') {
        return Err(bad_name(name, "path separators are not allowed"));
    }
    if name == "." || name == ".." || name.starts_with('.') {
        return Err(bad_name(name, "hidden and relative names are not allowed"));
    }
    if name.chars().any(|c| c.is_control()) {
        return Err(bad_name(name, "control characters are not allowed"));
    }
    if !(name.ends_with(".mps") || name.ends_with(".mps.d")) {
        return Err(bad_name(name, "expected a .mps file or .mps.d directory"));
    }
    Ok(())
}

/// A directory of trace stores behind shared readers.
pub struct TraceRepo {
    root: PathBuf,
    open: RwLock<HashMap<String, Arc<MpsSource>>>,
}

impl TraceRepo {
    /// Bind to `root`. Fails fast if it is not a readable directory;
    /// stores themselves are opened lazily on first touch.
    pub fn new(root: &Path) -> io::Result<TraceRepo> {
        if !root.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("trace repository {} is not a directory", root.display()),
            ));
        }
        Ok(TraceRepo { root: root.to_path_buf(), open: RwLock::new(HashMap::new()) })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Enumerate the store names currently present under the root,
    /// sorted. Re-reads the directory on every call so stores dropped
    /// in while the service runs are picked up without a restart.
    pub fn list_names(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            let Ok(name) = entry.file_name().into_string() else { continue };
            let is_dir = entry.file_type().map(|t| t.is_dir()).unwrap_or(false);
            if ((is_dir && name.ends_with(".mps.d")) || (!is_dir && name.ends_with(".mps")))
                && validate_name(&name).is_ok()
            {
                names.push(name);
            }
        }
        names.sort();
        Ok(names)
    }

    /// Look up (opening on first touch) the shared reader for `name`.
    ///
    /// Errors keep their `io::ErrorKind` so the router can map them:
    /// `InvalidInput` → 400, `NotFound` → 404, `InvalidData`
    /// (corruption) → 502.
    pub fn lookup(&self, name: &str) -> io::Result<Arc<MpsSource>> {
        validate_name(name)?;
        if let Some(src) = self.open.read().expect("repo poisoned").get(name) {
            return Ok(Arc::clone(src));
        }
        let path = self.root.join(name);
        if !path.exists() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no trace named {name:?} in the repository"),
            ));
        }
        // Strict + verify: a damaged store must fail the request (the
        // router answers 502 with the damage summary), not silently
        // serve partial data to an unsuspecting analysis.
        let src = Arc::new(MpsSource::open_with_options(&path, RecoveryMode::Strict, true)?);
        let mut open = self.open.write().expect("repo poisoned");
        // Another request may have opened it concurrently; keep the
        // first so every client shares one block cache.
        Ok(Arc::clone(open.entry(name.to_string()).or_insert(src)))
    }

    /// Drop the cached reader for `name` (used after a store is found
    /// damaged, so a repaired store is re-opened fresh).
    pub fn evict(&self, name: &str) {
        self.open.write().expect("repo poisoned").remove(name);
    }

    /// Block-cache counters summed over every open store.
    pub fn cache_stats(&self) -> CacheStats {
        self.open
            .read()
            .expect("repo poisoned")
            .values()
            .map(|s| s.cache_stats())
            .fold(CacheStats::default(), CacheStats::merged)
    }

    /// Number of stores currently held open.
    pub fn open_count(&self) -> usize {
        self.open.read().expect("repo poisoned").len()
    }
}

/// A per-request [`TraceSource`] view of a shared reader that threads
/// a [`CancelToken`] into every scan, and remembers the `ErrorKind`
/// of the last scan failure. The folding engine flattens I/O errors
/// to strings ([`mempersp_folding::FoldError::Io`]); the recorded
/// kind lets the router still distinguish a deadline (`503`) from
/// corruption (`502`) after a failed fold.
pub struct CancellableSource<'a> {
    src: &'a MpsSource,
    cancel: &'a CancelToken,
    last_err: Option<io::ErrorKind>,
}

impl<'a> CancellableSource<'a> {
    pub fn new(src: &'a MpsSource, cancel: &'a CancelToken) -> CancellableSource<'a> {
        CancellableSource { src, cancel, last_err: None }
    }

    /// `ErrorKind` of the most recent failed scan, if any.
    pub fn last_err_kind(&self) -> Option<io::ErrorKind> {
        self.last_err
    }
}

impl TraceSource for CancellableSource<'_> {
    fn header(&mut self) -> io::Result<Trace> {
        Ok(self.src.store_header().clone())
    }

    fn scan(
        &mut self,
        query: &Query,
        sink: &mut dyn FnMut(TraceEvent),
    ) -> io::Result<ScanStats> {
        match self.src.query_cancel(query, self.cancel) {
            Ok((events, stats)) => {
                for e in events {
                    sink(e);
                }
                Ok(stats)
            }
            Err(e) => {
                self.last_err = Some(e.kind());
                Err(e)
            }
        }
    }

    fn format_name(&self) -> &'static str {
        self.src.format_name()
    }
}

/// Identity string for memoization: name plus facts that change
/// whenever the store is rewritten. Stores are write-once (the writer
/// finalizes atomically), so (version, events) pinning is enough to
/// keep a stale memo from surviving a replaced store file.
pub fn trace_identity(name: &str, src: &MpsSource) -> String {
    format!("{name}#v{}#{}", src.format_version(), src.num_events())
}

/// Corrupt one byte of a store file — shared by the damage tests.
#[doc(hidden)]
pub fn flip_byte_for_tests(path: &Path, offset_from_end: u64) -> io::Result<()> {
    use std::io::{Seek, SeekFrom, Write};
    let mut f = std::fs::OpenOptions::new().read(true).write(true).open(path)?;
    f.seek(SeekFrom::End(-(offset_from_end as i64)))?;
    let mut b = [0u8; 1];
    f.read_exact(&mut b)?;
    b[0] ^= 0xff;
    f.seek(SeekFrom::End(-(offset_from_end as i64)))?;
    f.write_all(&b)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_validated_strictly() {
        for good in ["run.mps", "hpcg-nx24.mps.d", "a.mps"] {
            assert!(validate_name(good).is_ok(), "{good}");
        }
        for bad in [
            "",
            "../etc/passwd",
            "sub/dir.mps",
            "back\\slash.mps",
            ".hidden.mps",
            "..",
            "noext",
            "trace.prv",
            "nul\0byte.mps",
        ] {
            let err = validate_name(bad).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "{bad}");
        }
    }

    #[test]
    fn repo_requires_a_directory() {
        let err = TraceRepo::new(Path::new("/definitely/not/here")).err().unwrap();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn lookup_unknown_is_not_found() {
        let dir = std::env::temp_dir().join(format!("mempersp-repo-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let repo = TraceRepo::new(&dir).unwrap();
        assert_eq!(repo.list_names().unwrap(), Vec::<String>::new());
        let err = repo.lookup("ghost.mps").err().unwrap();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        let err = repo.lookup("../escape.mps").err().unwrap();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn list_skips_foreign_files() {
        let dir = std::env::temp_dir().join(format!("mempersp-repo-list-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("notes.txt"), b"x").unwrap();
        std::fs::write(dir.join("b.mps"), b"not a real store yet").unwrap();
        std::fs::create_dir_all(dir.join("a.mps.d")).unwrap();
        std::fs::create_dir_all(dir.join("plain-dir")).unwrap();
        let repo = TraceRepo::new(&dir).unwrap();
        assert_eq!(repo.list_names().unwrap(), vec!["a.mps.d".to_string(), "b.mps".to_string()]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
