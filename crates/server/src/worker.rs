//! A small fixed-size worker pool over `std::sync::mpsc`.
//!
//! Admission control happens *before* a job is submitted (at accept
//! time, against the in-flight gauge), so the channel never holds
//! more than `max_inflight` connections and the pool itself needs no
//! queue bound. Dropping the pool closes the channel; every worker
//! drains what it already took and exits, which is exactly the
//! graceful-shutdown drain.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

pub struct Pool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("mempersp-worker-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawning worker thread")
            })
            .collect();
        Pool { tx: Some(tx), workers }
    }

    /// Hand a job to the pool. Panics if called after [`Pool::join`]
    /// — the accept loop stops submitting before it drops the pool.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool already joined")
            .send(Box::new(job))
            .expect("worker pool hung up");
    }

    /// Close the channel and wait for every worker to finish the jobs
    /// already submitted.
    pub fn join(mut self) {
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the lock only while *taking* a job, never while
        // running one, so workers drain the queue concurrently.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // channel closed: shutdown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_submitted_job() {
        let pool = Pool::new(4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let done = Arc::clone(&done);
            pool.execute(move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join();
        assert_eq!(done.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn join_waits_for_inflight_jobs() {
        let pool = Pool::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let done = Arc::clone(&done);
            pool.execute(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join();
        assert_eq!(done.load(Ordering::SeqCst), 4, "join must drain the queue");
    }

    #[test]
    fn jobs_run_concurrently() {
        // With 4 workers, 4 jobs that each wait for the others to
        // start must all be in flight at once or this deadlocks.
        let pool = Pool::new(4);
        let started = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let started = Arc::clone(&started);
            pool.execute(move || {
                started.fetch_add(1, Ordering::SeqCst);
                while started.load(Ordering::SeqCst) < 4 {
                    std::thread::yield_now();
                }
            });
        }
        pool.join();
        assert_eq!(started.load(Ordering::SeqCst), 4);
    }
}
