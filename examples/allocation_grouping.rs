//! The paper's "preliminary analysis" story: with HPCG's per-row
//! allocations below the tracker threshold, most PEBS samples resolve
//! to no data object; manually grouping the generator's allocations
//! (as the authors did) rescues the attribution.
//!
//! ```sh
//! cargo run --release --example allocation_grouping
//! ```

use mempersp::core::workflow::analyze_hpcg;
use mempersp::core::MachineConfig;
use mempersp::hpcg::HpcgConfig;

fn run(group: bool) -> (f64, Vec<(String, u64)>) {
    let mcfg = MachineConfig::small();
    let hcfg = HpcgConfig {
        nx: 8,
        max_iters: 3,
        mg_levels: 3,
        group_allocations: group,
        use_mg: true,
    };
    let a = analyze_hpcg(mcfg, hcfg);
    let tops = a
        .objects
        .iter()
        .take(4)
        .map(|o| (o.name.clone(), o.total()))
        .collect();
    (a.resolved_fraction, tops)
}

fn main() {
    println!("HPCG allocates its matrix with one tiny allocation per row");
    println!("(27 doubles = 216 B < the 1 KiB tracking threshold).\n");

    let (without, tops_without) = run(false);
    println!("WITHOUT grouping: {:.1} % of PEBS samples resolved", 100.0 * without);
    for (name, n) in &tops_without {
        println!("  {n:>6} samples  {name}");
    }

    let (with, tops_with) = run(true);
    println!("\nWITH the authors' manual grouping: {:.1} % resolved", 100.0 * with);
    for (name, n) in &tops_with {
        println!("  {n:>6} samples  {name}");
    }

    println!(
        "\ngrouping rescued {:.1} percentage points of attribution",
        100.0 * (with - without)
    );
    assert!(with > without);
}
