//! Why Extrae multiplexes the PEBS load and store events *within one
//! run*: two separate runs see different address-space layouts under
//! ASLR, so their samples cannot be overlaid on one address axis.
//!
//! ```sh
//! cargo run --release --example multiplexing_aslr
//! ```

use mempersp::core::{Machine, MachineConfig, PebsCoreSelect};
use mempersp::pebs::{PebsEvent, SamplingConfig};
use mempersp::workloads::StreamTriad;

fn machine(aslr_seed: u64, events: Vec<SamplingConfig>) -> Machine {
    let mut cfg = MachineConfig::small();
    cfg.tracer.aslr_seed = aslr_seed;
    cfg.pebs_events = events;
    cfg.pebs_cores = PebsCoreSelect::Only(0);
    Machine::new(cfg)
}

fn load_cfg() -> SamplingConfig {
    SamplingConfig { event: PebsEvent::LoadLatency { threshold: 0 }, period: 97, randomization: 0.1, seed: 1 }
}

fn store_cfg() -> SamplingConfig {
    SamplingConfig { event: PebsEvent::AllStores, period: 53, randomization: 0.1, seed: 2 }
}

fn addr_range(report: &mempersp::core::RunReport, stores: bool) -> (u64, u64) {
    let addrs: Vec<u64> = report
        .trace
        .pebs_events()
        .filter(|(_, s, _)| s.is_store == stores)
        .map(|(_, s, _)| s.addr)
        .collect();
    (
        addrs.iter().copied().min().unwrap_or(0),
        addrs.iter().copied().max().unwrap_or(0),
    )
}

fn main() {
    // --- The two-run approach: loads in run 1, stores in run 2. -----
    let mut run1 = machine(1111, vec![load_cfg()]);
    let rep1 = run1.run(&mut StreamTriad::new(1 << 14, 8));
    let mut run2 = machine(2222, vec![store_cfg()]);
    let rep2 = run2.run(&mut StreamTriad::new(1 << 14, 8));

    // The triad's three arrays occupy ~3 × n × 8 bytes of heap; any
    // sane overlay of load and store samples must land within a few
    // array sizes. Across two ASLR-randomized runs the combined span
    // is dominated by the slide difference instead.
    let array_bytes = (1u64 << 14) * 8;
    let (l_min, l_max) = addr_range(&rep1, false);
    let (s_min, s_max) = addr_range(&rep2, true);
    println!("two separate runs (ASLR randomizes each):");
    println!("  run 1 loads  : 0x{l_min:012x} .. 0x{l_max:012x} (slide 0x{:x})", rep1.trace.meta.aslr_slide);
    println!("  run 2 stores : 0x{s_min:012x} .. 0x{s_max:012x} (slide 0x{:x})", rep2.trace.meta.aslr_slide);
    let two_run_span = l_max.max(s_max) - l_min.min(s_min);
    println!(
        "  combined span: {:.1} MB for {:.1} MB of data → overlaying is meaningless!",
        two_run_span as f64 / 1e6,
        3.0 * array_bytes as f64 / 1e6
    );
    assert_ne!(rep1.trace.meta.aslr_slide, rep2.trace.meta.aslr_slide);
    assert!(two_run_span > 8 * array_bytes);

    // --- The paper's approach: multiplex both events in one run. ----
    let mut mux_run = machine(3333, vec![load_cfg(), store_cfg()]);
    let rep = mux_run.run(&mut StreamTriad::new(1 << 14, 8));
    let (ml_min, ml_max) = addr_range(&rep, false);
    let (ms_min, ms_max) = addr_range(&rep, true);
    println!("\none multiplexed run:");
    println!("  loads  : 0x{ml_min:012x} .. 0x{ml_max:012x}");
    println!("  stores : 0x{ms_min:012x} .. 0x{ms_max:012x}");
    let one_run_span = ml_max.max(ms_max) - ml_min.min(ms_min);
    println!(
        "  combined span: {:.1} MB → loads and stores share one address axis ✓",
        one_run_span as f64 / 1e6
    );
    assert!(one_run_span <= 4 * array_bytes, "one run is compact");

    if let Some(Some(st)) = rep.mux_stats.first() {
        println!("\nmultiplexer occupancy:");
        for (label, matched, captured) in &st.per_event {
            println!("  {label:<16} matched {matched:>8}  captured {captured:>6}");
        }
        println!("  rotations: {}", st.rotations);
    }
}
