//! Characterize four archetypal memory behaviours through the full
//! tool-chain: STREAM (bandwidth-bound), a 7-point stencil (mixed
//! locality), pointer chasing (latency-bound) and tiled matmul
//! (cache-friendly). Prints, per workload, the data-source mix and
//! mean sampled latency — the per-access facts PEBS contributes.
//!
//! ```sh
//! cargo run --release --example memory_characterization
//! ```

use mempersp::core::{Machine, MachineConfig};
use mempersp::extrae::Workload;
use mempersp::workloads::{PointerChase, Stencil7, StreamTriad, TiledMatmul};

fn characterize(name: &str, w: &mut dyn Workload) {
    let mut machine = Machine::new(MachineConfig::small());
    let report = machine.run(w);
    let samples: Vec<_> = report.trace.pebs_events().collect();
    let n = samples.len().max(1) as f64;
    let mut by_source = [0usize; 4];
    let mut lat_sum = 0u64;
    for (_, s, _) in &samples {
        let idx = match s.source {
            mempersp::memsim::MemLevel::L1 => 0,
            mempersp::memsim::MemLevel::L2 => 1,
            mempersp::memsim::MemLevel::L3 => 2,
            mempersp::memsim::MemLevel::Dram => 3,
        };
        by_source[idx] += 1;
        lat_sum += s.latency as u64;
    }
    let stats = report.stats.total_cores();
    println!("{name:<18} samples {:>6}  mean lat {:>7.1} cyc  sources L1 {:>4.1}% L2 {:>4.1}% L3 {:>4.1}% DRAM {:>4.1}%  (IPC proxy: {:>5.0} kcycles)",
        samples.len(),
        lat_sum as f64 / n,
        100.0 * by_source[0] as f64 / n,
        100.0 * by_source[1] as f64 / n,
        100.0 * by_source[2] as f64 / n,
        100.0 * by_source[3] as f64 / n,
        report.wall_cycles as f64 / 1e3,
    );
    let _ = stats;
}

fn main() {
    println!("per-workload PEBS characterization (small simulated machine)\n");
    characterize("STREAM triad", &mut StreamTriad::new(1 << 15, 4));
    characterize("7-pt stencil", &mut Stencil7::new(24, 4));
    characterize("pointer chase", &mut PointerChase::new(1 << 14, 1 << 15, 42));
    characterize("tiled matmul", &mut TiledMatmul::new(48, 8));
    println!("\nreading: the chase is latency-bound (DRAM-heavy, huge mean");
    println!("latency); the triad streams (prefetch-friendly); the tiled");
    println!("matmul mostly hits cache; the stencil sits in between.");
}
