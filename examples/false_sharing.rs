//! Diagnosing false sharing with the memory perspective: two cores
//! increment "their own" counters that share one cache line; the PEBS
//! access costs and the coherence counters expose the ping-pong, and
//! padding fixes it.
//!
//! ```sh
//! cargo run --release --example false_sharing
//! ```

use mempersp::core::{latency_profile, Machine, MachineConfig, PebsCoreSelect};
use mempersp::workloads::FalseSharing;

fn run(padded: bool) {
    let mut cfg = MachineConfig::small();
    cfg.cores = 2;
    cfg.pebs_cores = PebsCoreSelect::All;
    for e in &mut cfg.pebs_events {
        e.period = 13;
    }
    let mut m = Machine::new(cfg);
    let mut w = FalseSharing::new(50_000, padded);
    let report = m.run(&mut w);

    let lat = latency_profile(&report.trace, None, false).expect("samples");
    println!(
        "{:<12} wall {:>10} cycles | invalidations {:>6} | load cost mean {:>6.1} p99 {:>4} cycles",
        if padded { "padded" } else { "shared-line" },
        report.wall_cycles,
        report.stats.coherence_invalidations,
        lat.mean,
        lat.p99,
    );
}

fn main() {
    println!("two cores incrementing adjacent counters, 50k iterations each:\n");
    run(false);
    run(true);
    println!("\nthe shared-line variant's sampled access costs and coherence");
    println!("invalidations give the diagnosis away; padding each counter to");
    println!("its own cache line removes both.");
}
