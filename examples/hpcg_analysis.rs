//! The paper's complete work-flow on HPCG: run the benchmark on a
//! Haswell-like simulated node, fold the CG iterations, and emit the
//! three-panel figure (CSV + gnuplot under `target/fig1/`) plus the
//! textual analysis.
//!
//! ```sh
//! cargo run --release --example hpcg_analysis            # default nx=16
//! cargo run --release --example hpcg_analysis -- 32 10 4 # nx iters cores
//! ```

use mempersp::core::report::{ascii, figure};
use mempersp::core::workflow::analyze_hpcg;
use mempersp::core::MachineConfig;
use mempersp::hpcg::HpcgConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nx: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let iters: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(6);
    let cores: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(2);

    let mut mcfg = MachineConfig::haswell(cores);
    // Keep sampling dense enough for small problems.
    mcfg.counter_sample_period = 20_000;
    mcfg.mux_slice_cycles = 50_000;
    let hcfg = HpcgConfig {
        nx,
        max_iters: iters,
        mg_levels: if nx.is_multiple_of(8) && nx >= 16 { 4 } else { 3 },
        group_allocations: true,
        use_mg: true,
    };

    eprintln!("running HPCG nx={nx} iters={iters} on {cores} simulated cores ...");
    let analysis = analyze_hpcg(mcfg, hcfg);

    println!("{}", analysis.summary());
    println!(
        "solver: residual reduced {:.2e}×, max error vs exact solution {:.2e}",
        1.0 / analysis.solver[0].reduction().max(1e-300),
        analysis.solver[0].max_error
    );

    println!("\n-- folded code-line panel (CG iteration) --------------------");
    print!("{}", ascii::lines_panel(&analysis.folded_iteration, 96, 24));
    println!("\n-- folded address panel (CG iteration) ----------------------");
    print!("{}", ascii::address_panel(&analysis.folded_iteration, 96, 20));
    println!("\n-- folded performance panel ---------------------------------");
    print!("{}", ascii::performance_panel(&analysis.folded_iteration, 80));

    let dir = std::path::Path::new("target/fig1");
    let files = figure::write_figure_bundle(
        dir,
        "fig1",
        &format!("HPCG {nx}^3 — folded CG iteration (Servat et al. Fig. 1 reproduction)"),
        &analysis.folded_iteration,
        &analysis.report.trace,
        &analysis.phases,
    )
    .expect("write figure bundle");
    println!("\nfigure bundle written:");
    for f in files {
        println!("  {}", f.display());
    }
    println!("render with: gnuplot target/fig1/fig1.gp");
}
