//! Quickstart: monitor a STREAM triad on the simulated machine, fold
//! its repetitions, and print the folded report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mempersp::core::report::ascii;
use mempersp::core::{Machine, MachineConfig};
use mempersp::folding::{fold_region, FoldingConfig};
use mempersp::pebs::EventKind;
use mempersp::workloads::StreamTriad;

fn main() {
    // A machine with one core, a small cache hierarchy and PEBS
    // sampling of loads and stores.
    let mut machine = Machine::new(MachineConfig::small());

    // Run an instrumented workload: 64 Ki elements, 20 repetitions.
    let mut triad = StreamTriad::new(1 << 16, 20);
    let report = machine.run(&mut triad);

    println!("workload : STREAM triad, checksum {}", triad.checksum);
    println!("events   : {}", report.trace.num_events());
    println!("cycles   : {}", report.wall_cycles);
    let stats = report.stats.total_cores();
    println!(
        "accesses : {} loads, {} stores ({} from DRAM)",
        stats.loads, stats.stores, stats.served_dram
    );
    println!(
        "PEBS     : {} samples, {:.1} % resolved to data objects",
        report.trace.pebs_events().count(),
        100.0 * report.trace.resolution.resolved_fraction()
    );

    // Fold the 20 triad repetitions into one synthetic instance.
    let folded = fold_region(&report.trace, "triad", &FoldingConfig::default())
        .expect("triad region folds");
    println!(
        "\nfolded {} instances of 'triad' (mean {:.3} ms, mean {:.0} MIPS)",
        folded.instances_used,
        folded.duration_ms(),
        folded.mean_mips()
    );
    println!(
        "L1D misses/instruction at folded midpoint: {:.4}",
        folded.per_instruction_at(EventKind::L1dMiss, 0.5)
    );

    // The figure panels, rendered as ASCII.
    println!("\n-- folded address panel ------------------------------------");
    print!("{}", ascii::address_panel(&folded, 72, 16));
    println!("\n-- folded performance panel --------------------------------");
    print!("{}", ascii::performance_panel(&folded, 64));
}
