//! Post-mortem parity: a trace written to disk and parsed back must
//! fold to exactly the same result as the in-memory trace — the
//! property that makes the monitor/analyzer split of the real tools
//! sound.

use mempersp::core::{Machine, MachineConfig};
use mempersp::extrae::trace_format::{load_trace, save_trace};
use mempersp::folding::{fold_region, FoldingConfig};
use mempersp::hpcg::{HpcgConfig, HpcgWorkload};
use mempersp::workloads::StreamTriad;

#[test]
fn stream_trace_roundtrip_preserves_folding() {
    let mut machine = Machine::new(MachineConfig::small());
    let report = machine.run(&mut StreamTriad::new(1 << 13, 6));

    let dir = std::env::temp_dir().join("mempersp_test_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stream.prv");
    save_trace(&path, &report.trace).unwrap();
    let loaded = load_trace(&path).unwrap();

    assert_eq!(loaded.num_events(), report.trace.num_events());
    assert_eq!(loaded.meta, report.trace.meta);

    let cfg = FoldingConfig::default();
    let a = fold_region(&report.trace, "triad", &cfg).unwrap();
    let b = fold_region(&loaded, "triad", &cfg).unwrap();
    assert_eq!(a.instances_used, b.instances_used);
    assert_eq!(a.avg_duration_cycles, b.avg_duration_cycles);
    assert_eq!(a.pooled.addr_points, b.pooled.addr_points);
    for (ca, cb) in a.counters.iter().zip(&b.counters) {
        assert_eq!(ca.curve, cb.curve);
        assert_eq!(ca.avg_total, cb.avg_total);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn hpcg_trace_roundtrip_preserves_objects_and_resolution() {
    let mut machine = Machine::new(MachineConfig::small());
    let mut w = HpcgWorkload::new(HpcgConfig::tiny());
    let report = machine.run(&mut w);

    let dir = std::env::temp_dir().join("mempersp_test_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("hpcg.prv");
    save_trace(&path, &report.trace).unwrap();
    let loaded = load_trace(&path).unwrap();

    assert_eq!(loaded.objects.all().len(), report.trace.objects.all().len());
    assert_eq!(loaded.resolution, report.trace.resolution);
    assert_eq!(loaded.region_names, report.trace.region_names);
    // Every PEBS sample's object annotation survives.
    for ((_, sa, oa), (_, sb, ob)) in report.trace.pebs_events().zip(loaded.pebs_events()) {
        assert_eq!(sa, sb);
        assert_eq!(oa, ob);
    }
    std::fs::remove_file(&path).ok();
}
