//! Property suite for the single-pass, multi-region folding engine:
//! for any generated trace, folding every region concurrently — in
//! memory or through either trace container, at any worker-thread
//! count — must be byte-identical (Debug-serialized report) to the
//! sequential per-region folds it replaced, and the `.mps` path must
//! actually prune chunks while doing it.

use mempersp::extrae::trace_format::save_trace;
use mempersp::extrae::{Trace, Tracer, TracerConfig};
use mempersp::folding::{
    fold_region, fold_regions, fold_regions_source, FoldingConfig, RegionRequest,
};
use mempersp::memsim::MemLevel;
use mempersp::pebs::{CounterSnapshot, EventKind, PebsSample};
use mempersp::store::{open_trace_source, write_store_chunked};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

const REGIONS: [&str; 2] = ["outer", "inner"];

fn snap(base: u64) -> CounterSnapshot {
    let mut v = [0u64; EventKind::ALL.len()];
    for (i, kind) in EventKind::ALL.iter().enumerate() {
        v[kind.index()] = base * (i as u64 + 1) / 2;
    }
    v[EventKind::Instructions.index()] = base;
    v[EventKind::Cycles.index()] = base * 2;
    CounterSnapshot::from_values(v)
}

/// A nested two-region trace: `instances` repetitions of
/// `outer{ inner }` on each of `cores` cores, with `samples` counter
/// samples and one PEBS sample per instance, followed by a long tail
/// of user events (foldable-free chunks a pruned store scan can skip).
fn build_trace(instances: usize, samples: usize, cores: usize) -> Trace {
    let mut t = Tracer::new(TracerConfig { freq_mhz: 1500, ..Default::default() }, cores);
    let ip = t.location("kernel.cpp", 7, "kern");
    let mut now = 0u64;
    let mut base = 0u64;
    for k in 0..instances {
        for core in 0..cores {
            t.enter(core, "outer", snap(base), now);
            t.enter(core, "inner", snap(base + 100), now + 100);
            for s in 1..=samples {
                let dt = (800 * s / (samples + 1)) as u64;
                t.record_counter_sample(core, ip, snap(base + 100 + dt), now + 100 + dt);
            }
            t.record_pebs(PebsSample {
                timestamp: now + 300,
                core,
                ip: ip.0,
                addr: 0x1000 + (k as u64 * 64) + core as u64,
                size: 8,
                is_store: k % 2 == 0,
                latency: 10 + k as u32,
                source: MemLevel::L2,
                tlb_miss: false,
            });
            t.exit(core, "inner", snap(base + 900), now + 900);
            t.record_counter_sample(core, ip, snap(base + 950), now + 950);
            t.exit(core, "outer", snap(base + 1000), now + 1000);
        }
        now += 1200;
        base += 1000;
    }
    // Tail traffic no fold consumes: whole chunks of it must be
    // skippable via the store's kind index.
    for u in 0..200u64 {
        t.user_event(0, 42, u, now + u);
    }
    t.finish("fold-multi property trace")
}

fn unique_path(ext: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("mempersp_fold_multi_{}_{n}.{ext}", std::process::id()))
}

/// Debug-serialize every per-region result (errors included): the
/// compared byte string covers curves, pooled panels and counters.
fn render(results: &[Result<mempersp::folding::FoldedRegion, mempersp::folding::FoldError>]) -> Vec<String> {
    results.iter().map(|r| format!("{r:?}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn multi_region_fold_is_byte_identical_across_paths(
        instances in 2usize..7,
        samples in 1usize..6,
        cores in 1usize..4,
    ) {
        let trace = build_trace(instances, samples, cores);
        let cfg = FoldingConfig::default();
        let requests: Vec<RegionRequest> =
            REGIONS.iter().map(|r| RegionRequest::with_cfg(*r, cfg)).collect();

        // Baseline: the pre-engine shape — one sequential fold per region.
        let baseline: Vec<String> = REGIONS
            .iter()
            .map(|r| format!("{:?}", fold_region(&trace, r, &cfg)))
            .collect();

        // In-memory engine at every thread count.
        for threads in [1usize, 2, 4] {
            let got = render(&fold_regions(&trace, &requests, threads));
            prop_assert_eq!(&got, &baseline, "in-memory fold diverged at threads={}", threads);
        }

        // Both containers, every thread count, through the pruned
        // two-phase source scan.
        let prv = unique_path("prv");
        let mps = unique_path("mps");
        save_trace(&prv, &trace).unwrap();
        write_store_chunked(&mps, &trace, 1024).unwrap();
        for path in [&prv, &mps] {
            for threads in [1usize, 2, 4] {
                let mut src = open_trace_source(path).unwrap();
                let (results, stats) =
                    fold_regions_source(src.as_mut(), &requests, threads).unwrap();
                let got = render(&results);
                prop_assert_eq!(
                    &got, &baseline,
                    "source fold diverged: {} threads={}", path.display(), threads
                );
                if path.extension().and_then(|e| e.to_str()) == Some("mps") {
                    prop_assert!(
                        stats.chunks_skipped > 0,
                        "indexed store scan skipped no chunks ({:?})", stats
                    );
                }
            }
        }
        std::fs::remove_file(&prv).ok();
        std::fs::remove_file(&mps).ok();
    }
}
