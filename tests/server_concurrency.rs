//! End-to-end checks of the trace-analysis service: a real server on
//! an ephemeral port, driven by plain `TcpStream` clients.
//!
//! The acceptance criteria under test:
//!
//! * concurrent clients mixing `/v1/traces`, `/v1/query` and
//!   `/v1/fold` get answers **byte-identical** to the batch path
//!   (the same `MpsSource` query + `event_to_json` schema the
//!   `mempersp query --json` CLI emits);
//! * a repeated fold is answered from the memo (`X-Memo: hit`) with a
//!   byte-identical body;
//! * a corrupt store yields `502` plus a damage summary — the server
//!   must survive, never panic;
//! * overload yields `429` at admission, and the slot is reusable
//!   after the hogging client goes away;
//! * an expired deadline yields `503`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::OnceLock;

use mempersp::core::{Machine, MachineConfig};
use mempersp::extrae::json::{event_to_json, query_from_json};
use mempersp::hpcg::{HpcgConfig, HpcgWorkload};
use mempersp::server::{start, ServerConfig};
use mempersp::store::{write_store_chunked, MpsSource, RecoveryMode};
use mempersp::workloads::StreamTriad;

/// One shared repository: an HPCG store, a STREAM store, and a
/// deliberately corrupted copy of the HPCG store.
fn repo() -> &'static PathBuf {
    static CELL: OnceLock<PathBuf> = OnceLock::new();
    CELL.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("mempersp_srv_it_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        let mut mcfg = MachineConfig::small();
        mcfg.cores = 2;
        mcfg.counter_sample_period = 20_000;
        let mut w = HpcgWorkload::new(HpcgConfig {
            nx: 8,
            max_iters: 3,
            mg_levels: 3,
            group_allocations: true,
            use_mg: true,
        });
        let hpcg = Machine::new(mcfg).run(&mut w);
        write_store_chunked(&dir.join("hpcg.mps"), &hpcg.trace, 8 * 1024).unwrap();

        let stream = Machine::new(MachineConfig::small()).run(&mut StreamTriad::new(1 << 13, 3));
        write_store_chunked(&dir.join("stream.mps"), &stream.trace, 8 * 1024).unwrap();

        // A corrupt sibling: same bytes, one flipped in the chunk
        // region (far enough from the end to sit in a payload).
        std::fs::copy(dir.join("hpcg.mps"), dir.join("bad.mps")).unwrap();
        mempersp::server::repo::flip_byte_for_tests(&dir.join("bad.mps"), 2000).unwrap();
        dir
    })
}

fn launch(max_inflight: usize, workers: usize, timeout_ms: u64) -> mempersp::server::ServerHandle {
    let cfg = ServerConfig {
        root: repo().clone(),
        addr: "127.0.0.1:0".to_string(),
        max_inflight,
        timeout_ms,
        workers,
        memo_cap: 16,
    };
    start(&cfg).unwrap()
}

/// A minimal HTTP/1.1 client: one request, read to EOF (the server
/// closes every connection), de-chunk if needed.
fn http(addr: SocketAddr, method: &str, target: &str, body: Option<&str>) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    let body = body.unwrap_or("");
    write!(
        s,
        "{method} {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .unwrap();
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).unwrap();
    let raw = String::from_utf8(raw).unwrap();
    let (head, payload) = raw.split_once("\r\n\r\n").expect("no header terminator");
    let status: u16 = head.split(' ').nth(1).unwrap().parse().unwrap();
    let body = if head.to_ascii_lowercase().contains("transfer-encoding: chunked") {
        let mut rest = payload;
        let mut out = String::new();
        while let Some((size_line, tail)) = rest.split_once("\r\n") {
            let size = usize::from_str_radix(size_line.trim(), 16).unwrap();
            if size == 0 {
                break;
            }
            out.push_str(&tail[..size]);
            rest = &tail[size + 2..];
        }
        out
    } else {
        payload.to_string()
    };
    (status, head.to_string(), body)
}

/// The reference answer for a query request: open the store directly
/// (the batch path) and serialize through the same canonical schema
/// as `mempersp query --json`.
fn reference_events(store: &str, query_json: &str) -> Vec<String> {
    let src = MpsSource::open_with_options(
        &repo().join(store),
        RecoveryMode::Strict,
        true,
    )
    .unwrap();
    let q = query_from_json(&serde_json::from_str(query_json).unwrap()).unwrap();
    let (events, _) = src.query(&q).unwrap();
    events.iter().map(|e| serde_json::to_string(&event_to_json(e)).unwrap()).collect()
}

/// Pull the serialized elements of the response's `events` array.
fn response_events(body: &str) -> Vec<String> {
    let v = serde_json::from_str(body).unwrap();
    v.get("events")
        .and_then(|e| e.as_array())
        .unwrap_or_else(|| panic!("no events array in {body}"))
        .iter()
        .map(|e| serde_json::to_string(e).unwrap())
        .collect()
}

#[test]
fn concurrent_clients_match_the_batch_path() {
    let handle = launch(16, 4, 30_000);
    let addr = handle.addr();

    // Four clients, each with its own predicate mix, all hammering
    // the same two stores concurrently.
    let cases: Vec<(&str, &str)> = vec![
        ("hpcg.mps", r#"{"kinds":["ENTER","EXIT"]}"#),
        ("hpcg.mps", r#"{"kinds":["PEBS"],"cores":[1]}"#),
        ("stream.mps", r#"{"kinds":["SAMP"]}"#),
        ("stream.mps", r#"{}"#),
    ];
    let threads: Vec<_> = cases
        .into_iter()
        .map(|(store, qjson)| {
            std::thread::spawn(move || {
                for round in 0..3 {
                    // The listing must always show all three stores.
                    let (status, _, body) = http(addr, "GET", "/v1/traces", None);
                    assert_eq!(status, 200);
                    assert!(body.contains("hpcg.mps") && body.contains("stream.mps"), "{body}");

                    let req = format!("{{\"trace\":\"{store}\",\"query\":{qjson}}}");
                    let (status, _, body) = http(addr, "POST", "/v1/query", Some(&req));
                    assert_eq!(status, 200, "round {round}: {body}");
                    let got = response_events(&body);
                    let want = reference_events(store, qjson);
                    assert_eq!(got.len(), want.len(), "round {round} {store} {qjson}");
                    assert_eq!(got, want, "server answer diverged from the batch path");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // Pagination is a window over the same ordered result.
    let all = reference_events("hpcg.mps", r#"{"kinds":["ENTER","EXIT"]}"#);
    let req = r#"{"trace":"hpcg.mps","query":{"kinds":["ENTER","EXIT"]},"offset":5,"limit":7}"#;
    let (status, _, body) = http(addr, "POST", "/v1/query", Some(req));
    assert_eq!(status, 200);
    let page = response_events(&body);
    assert_eq!(page, all[5..12].to_vec());
    let v = serde_json::from_str(&body).unwrap();
    assert_eq!(v.get("total_matched").and_then(|x| x.as_u64()), Some(all.len() as u64));

    handle.shutdown();
    handle.join();
}

#[test]
fn folds_are_memoized_and_byte_identical_across_clients() {
    let handle = launch(16, 4, 60_000);
    let addr = handle.addr();
    let req = r#"{"trace":"hpcg.mps","points":16}"#;

    // Cold fold: computed, marked as a miss.
    let (status, head, first_body) = http(addr, "POST", "/v1/fold", Some(req));
    assert_eq!(status, 200, "{first_body}");
    assert!(head.contains("X-Memo: miss"), "{head}");
    assert!(first_body.contains("\"regions\""));

    // Four concurrent repeats: every one a memo hit, every body
    // byte-identical to the cold result.
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let expect = first_body.clone();
            std::thread::spawn(move || {
                let (status, head, body) = http(addr, "POST", "/v1/fold", Some(req));
                assert_eq!(status, 200);
                assert!(head.contains("X-Memo: hit"), "{head}");
                assert_eq!(body, expect, "memoized body must be byte-identical");
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // A different region set (or resolution) is a different memo key.
    let (status, head, _) =
        http(addr, "POST", "/v1/fold", Some(r#"{"trace":"hpcg.mps","points":8}"#));
    assert_eq!(status, 200);
    assert!(head.contains("X-Memo: miss"), "{head}");

    // The memo hits are visible on /metrics.
    let (_, _, metrics) = http(addr, "GET", "/metrics", None);
    let hits: u64 = metrics
        .lines()
        .find(|l| l.starts_with("mempersp_fold_memo_hits_total"))
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap();
    assert!(hits >= 4, "expected >=4 memo hits, got {hits}\n{metrics}");
    assert!(metrics.contains("mempersp_block_cache_hits_total"));

    handle.shutdown();
    handle.join();
}

#[test]
fn corrupt_store_is_502_with_damage_summary_and_server_survives() {
    let handle = launch(8, 2, 30_000);
    let addr = handle.addr();

    let (status, _, body) = http(addr, "POST", "/v1/query", Some(r#"{"trace":"bad.mps"}"#));
    assert_eq!(status, 502, "{body}");
    assert!(body.contains("damage"), "{body}");
    assert!(body.contains("error"), "{body}");

    // Folding the damaged store must degrade the same way.
    let (status, _, body) = http(addr, "POST", "/v1/fold", Some(r#"{"trace":"bad.mps"}"#));
    assert_eq!(status, 502, "{body}");

    // The service took the hit gracefully: still serving.
    let (status, _, _) = http(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    let (status, _, body) = http(addr, "POST", "/v1/query", Some(r#"{"trace":"hpcg.mps","limit":1}"#));
    assert_eq!(status, 200, "{body}");

    handle.shutdown();
    handle.join();
}

#[test]
fn overload_is_429_and_the_slot_recovers() {
    let handle = launch(1, 1, 30_000);
    let addr = handle.addr();

    // Occupy the only slot: connect and send nothing. Admission
    // happens at accept, so the slot is taken the moment the server
    // accepts, even though no request bytes ever arrive.
    let hog = TcpStream::connect(addr).unwrap();
    // Give the accept loop time to take the slot.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let mut saw_429 = false;
    while std::time::Instant::now() < deadline {
        let (status, _, body) = http(addr, "GET", "/healthz", None);
        if status == 429 {
            assert!(body.contains("in-flight"), "{body}");
            saw_429 = true;
            break;
        }
        // The hog's accept may not have happened yet; retry.
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(saw_429, "never saw a 429 while the only slot was hogged");

    // Release the slot; the server must recover.
    drop(hog);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let mut recovered = false;
    while std::time::Instant::now() < deadline {
        let (status, _, _) = http(addr, "GET", "/healthz", None);
        if status == 200 {
            recovered = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(recovered, "slot never freed after the hogging client left");

    handle.shutdown();
    handle.join();
}

#[test]
fn expired_deadline_is_503() {
    // Deterministic deadline test: drive the router directly with an
    // already-expired per-request budget (the socket layer adds
    // nothing to this path).
    use mempersp::server::http::Request;
    use mempersp::server::router::{handle, App};

    let app = App::new(repo(), Some(std::time::Duration::ZERO), 4).unwrap();
    let req = Request {
        method: "POST".into(),
        path: "/v1/query".into(),
        query_string: String::new(),
        headers: Vec::new(),
        body: br#"{"trace":"hpcg.mps"}"#.to_vec(),
    };
    let (_, resp) = handle(&app, &req);
    assert_eq!(resp.status, 503, "{}", String::from_utf8_lossy(&resp.body));
    assert!(String::from_utf8_lossy(&resp.body).contains("deadline"));

    let fold = Request {
        method: "POST".into(),
        path: "/v1/fold".into(),
        query_string: String::new(),
        headers: Vec::new(),
        body: br#"{"trace":"hpcg.mps"}"#.to_vec(),
    };
    let (_, resp) = handle(&app, &fold);
    assert_eq!(resp.status, 503, "{}", String::from_utf8_lossy(&resp.body));
}

#[test]
fn unknown_endpoints_and_bad_input_over_the_wire() {
    let handle = launch(8, 2, 30_000);
    let addr = handle.addr();

    let (status, _, _) = http(addr, "GET", "/v2/everything", None);
    assert_eq!(status, 404);
    let (status, _, _) = http(addr, "DELETE", "/v1/fold", None);
    assert_eq!(status, 405);
    let (status, _, body) = http(addr, "POST", "/v1/query", Some("{oops"));
    assert_eq!(status, 400);
    assert!(body.contains("invalid JSON"), "{body}");
    let (status, _, _) = http(addr, "POST", "/v1/query", Some(r#"{"trace":"nope.mps"}"#));
    assert_eq!(status, 404);

    handle.shutdown();
    handle.join();
}
