//! End-to-end reproduction checks: run HPCG on the simulated machine
//! and assert each qualitative claim of the paper's Section III.
//!
//! These mirror the "testable assertions" list in DESIGN.md §5.

use mempersp::core::workflow::{analyze_hpcg, HpcgAnalysis};
use mempersp::core::{MachineConfig, SweepDirection};
use mempersp::hpcg::HpcgConfig;

/// One shared small run for all assertions (the analysis is pure after
/// the run, so a single simulation keeps the test suite fast).
fn analysis() -> &'static HpcgAnalysis {
    use std::sync::OnceLock;
    static CELL: OnceLock<HpcgAnalysis> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut mcfg = MachineConfig::small();
        mcfg.cores = 2;
        let hcfg = HpcgConfig { nx: 8, max_iters: 4, mg_levels: 3, group_allocations: true, use_mg: true };
        analyze_hpcg(mcfg, hcfg)
    })
}

#[test]
fn solver_converges_under_simulation() {
    let a = analysis();
    assert_eq!(a.solver.len(), 2, "one result per rank");
    assert!(a.solver[0].reduction() < 1e-2, "reduction {}", a.solver[0].reduction());
    assert!(a.solver[0].max_error < 0.05);
}

#[test]
fn claim1_phase_order_is_a_b_c_d_e() {
    let a = analysis();
    let labels: Vec<&str> = a.phases.iter().map(|p| p.label.as_str()).collect();
    assert_eq!(labels, vec!["A", "B", "C", "D", "E"]);
    // Phases are ordered and non-overlapping along the iteration.
    for w in a.phases.windows(2) {
        assert!(
            w[1].x_start >= w[0].x_end - 1e-9,
            "{} [{:.3},{:.3}] overlaps {} [{:.3},{:.3}]",
            w[0].label,
            w[0].x_start,
            w[0].x_end,
            w[1].label,
            w[1].x_start,
            w[1].x_end
        );
    }
    // And they cover a meaningful part of the iteration.
    let covered: f64 = a.phases.iter().map(|p| p.fraction()).sum();
    assert!(covered > 0.5, "phases cover {covered}");
}

#[test]
fn claim2_symgs_sweeps_forward_then_backward() {
    let a = analysis();
    let (fwd, bwd) = a.sweeps.as_ref().expect("sweeps detected");
    assert_eq!(fwd.direction, SweepDirection::Forward, "a1 rises: {fwd:?}");
    assert_eq!(bwd.direction, SweepDirection::Backward, "a2 falls: {bwd:?}");
    assert!(fwd.slope > 0.0 && bwd.slope < 0.0);
    // The forward sweep occupies the first part of the folded SYMGS,
    // the backward sweep the second.
    assert!(fwd.x_min < bwd.x_min, "fwd starts before bwd");
    assert!(fwd.x_max < bwd.x_max);
    // Both sweeps traverse a large part of the matrix object.
    let matrix = a
        .report
        .trace
        .objects
        .get(a.matrix_object.unwrap())
        .unwrap();
    for (name, s) in [("fwd", fwd), ("bwd", bwd)] {
        let covered = (s.addr_max - s.addr_min) as f64 / matrix.size as f64;
        assert!(covered > 0.5, "{name} sweep covers only {covered:.2} of the matrix");
    }
}

#[test]
fn claim3_matrix_region_is_read_only_in_execution_phase() {
    let a = analysis();
    let stats = a.matrix_stats().expect("matrix object sampled");
    assert!(stats.loads > 0, "matrix is read");
    assert_eq!(
        stats.stores, 0,
        "no stores may hit the matrix during CG (figure: no black points in the lower region)"
    );
    // The vector region, by contrast, sees both loads and stores.
    let vectors: Vec<_> = a
        .objects
        .iter()
        .filter(|o| o.name.starts_with("CG_ref.cpp") || o.name.starts_with("GenerateProblem_ref.cpp:15"))
        .collect();
    assert!(
        vectors.iter().any(|o| o.stores > 0),
        "vector objects must see stores: {vectors:?}"
    );
}

#[test]
fn claim4_spmv_bandwidth_exceeds_symgs() {
    let a = analysis();
    let a1 = a.bandwidth("a1").expect("a1 bandwidth");
    let a2 = a.bandwidth("a2").expect("a2 bandwidth");
    let b = a.bandwidth("B").expect("B bandwidth");
    assert!(b > a1 && b > a2, "SpMV ({b:.0} MB/s) must beat SYMGS sweeps ({a1:.0}/{a2:.0})");
    let ratio = b / a1.max(a2);
    assert!(
        (1.1..=3.0).contains(&ratio),
        "paper's ratio is ≈1.5 (6427 vs ~4250); got {ratio:.2}"
    );
    // Forward and backward sweeps are of similar magnitude (paper:
    // 4197 vs 4315 MB/s — within ~10 %).
    let sweep_ratio = a1.max(a2) / a1.min(a2);
    assert!(sweep_ratio < 1.6, "fwd/bwd sweeps comparable, got ratio {sweep_ratio:.2}");
}

#[test]
fn claim5_grouping_rescues_object_resolution() {
    let a = analysis();
    assert!(
        a.resolved_fraction > 0.9,
        "with grouping nearly all samples resolve; got {:.2}",
        a.resolved_fraction
    );

    // Re-run without grouping: most samples must be unresolved
    // because the per-row allocations are below the threshold.
    let mut mcfg = MachineConfig::small();
    mcfg.cores = 1;
    let hcfg = HpcgConfig { nx: 8, max_iters: 2, mg_levels: 2, group_allocations: false, use_mg: true };
    let ungrouped = analyze_hpcg(mcfg, hcfg);
    assert!(
        ungrouped.resolved_fraction < 0.6,
        "without grouping most matrix samples are unresolved; got {:.2}",
        ungrouped.resolved_fraction
    );
    assert!(ungrouped.resolved_fraction < a.resolved_fraction);
}

#[test]
fn claim6_mips_and_miss_curves_are_populated() {
    let a = analysis();
    let f = &a.folded_iteration;
    let mips = f.mean_mips();
    assert!(mips > 0.0, "mean MIPS positive");
    let series = f.performance_series(50);
    assert!(series.iter().all(|p| p.mips.is_finite() && p.mips >= 0.0));
    // Misses per instruction are below 1 and not all zero.
    let l1: Vec<f64> = series
        .iter()
        .map(|p| p.per_instruction[mempersp::pebs::EventKind::L1dMiss.index()])
        .collect();
    assert!(l1.iter().any(|&v| v > 0.0), "L1 miss curve populated");
    assert!(l1.iter().all(|&v| v < 1.0));
}

#[test]
fn cpi_stack_is_coherent() {
    use mempersp::core::{cpi_stack_mean, cpi_stack_window};
    let a = analysis();
    let f = &a.folded_iteration;
    let s = cpi_stack_mean(f);
    // The components reconstruct the measured cycles/instruction.
    let cycles = f.counter(mempersp::pebs::EventKind::Cycles).avg_total;
    let inst = f.counter(mempersp::pebs::EventKind::Instructions).avg_total;
    assert!((s.total - cycles / inst).abs() < 1e-9);
    assert!((s.base + s.l2 + s.l3 + s.dram - s.total).abs() < 1e-9);
    // HPCG on the tiny hierarchy is memory-bound but not purely so.
    let mb = s.memory_bound_fraction();
    assert!((0.2..0.98).contains(&mb), "memory-bound fraction {mb}");
    // The SYMGS phase (A) must be at least as DRAM-bound as the whole
    // iteration's vector tail after E.
    let a_phase = &a.phases[0];
    let wa = cpi_stack_window(f, a_phase.x_start, a_phase.x_end);
    assert!(wa.total > 0.0);
    assert!(wa.dram > 0.0, "SYMGS pulls the matrix from memory");
}

#[test]
fn figure_objects_carry_paper_style_labels() {
    let a = analysis();
    let matrix = a.report.trace.objects.get(a.matrix_object.unwrap()).unwrap();
    let label = matrix.figure_label();
    assert!(
        label.starts_with("124_GenerateProblem_ref.cpp|"),
        "label {label}"
    );
    assert!(a.map_object.is_some(), "89 MB map group present");
}

#[test]
fn dominant_streams_match_the_papers_reading() {
    use mempersp::core::phase_streams;
    let a = analysis();
    let tables = phase_streams(&a.folded_iteration, &a.report.trace, &a.phases);
    assert_eq!(tables.len(), 5);
    // Phases A, B, D, E are dominated by the matrix structure.
    for label in ["A", "B", "D", "E"] {
        let t = tables.iter().find(|t| t.phase.label == label).unwrap();
        let dom = t.dominant().unwrap_or_else(|| panic!("phase {label} has streams"));
        // Both simulated ranks' samples are pooled; either rank's
        // matrix group may dominate, but it must be a matrix group.
        assert!(
            dom.object_name.starts_with("124_GenerateProblem_ref.cpp"),
            "phase {label} dominated by {} instead of the matrix",
            dom.object_name
        );
        assert_eq!(dom.stores, 0, "the dominant matrix stream is read-only");
    }
    // A's dominant stream runs forward-then-backward; over the whole
    // phase the robust fit must NOT be a clean single direction, while
    // B (a single traversal) must be Forward.
    let b = tables.iter().find(|t| t.phase.label == "B").unwrap();
    assert_eq!(
        b.dominant().unwrap().direction,
        mempersp::core::SweepDirection::Forward,
        "SpMV traverses the matrix forward"
    );
}

#[test]
fn json_summary_is_complete_and_serializable() {
    let a = analysis();
    let j = a.json_summary();
    let text = serde_json::to_string_pretty(&j).expect("serializable");
    for key in [
        "iterations_folded",
        "mean_mips",
        "phases",
        "bandwidth_mb_per_s",
        "sweeps",
        "resolved_fraction",
        "matrix_read_only",
    ] {
        assert!(j.get(key).is_some(), "missing {key} in {text}");
    }
    assert_eq!(j["phases"].as_array().unwrap().len(), 5);
    assert_eq!(j["matrix_read_only"], serde_json::json!(true));
    assert_eq!(j["sweeps"]["forward"], "Forward");
    assert_eq!(j["sweeps"]["backward"], "Backward");
}

#[test]
fn multiplexed_run_sees_loads_and_stores_in_one_address_space() {
    let a = analysis();
    let pebs: Vec<_> = a.report.trace.pebs_events().collect();
    let loads = pebs.iter().filter(|(_, s, _)| !s.is_store).count();
    let stores = pebs.iter().filter(|(_, s, _)| s.is_store).count();
    assert!(loads > 50, "loads sampled: {loads}");
    assert!(stores > 10, "stores sampled: {stores}");
    // All samples are from core 0..2 and share the single ASLR slide
    // recorded in the trace meta.
    assert!(pebs.iter().all(|(_, s, _)| s.core < 2));
}
