//! The streaming trace-production pipeline must be invisible in the
//! output: `run_streaming` writing straight to disk — any writer
//! thread count, any epoch cap, any container — produces exactly the
//! bytes of the materialize-then-convert path it replaces.

use mempersp::core::{run_streaming_to_path, Machine, MachineConfig, StreamOptions};
use mempersp::extrae::trace_format::{save_trace, write_trace};
use mempersp::extrae::{AppContext, CodeLocation, Trace, Workload};
use mempersp::hpcg::{HpcgConfig, HpcgWorkload};
use mempersp::store::{write_store_sharded, write_store_with, DEFAULT_CHUNK_BYTES};
use proptest::prelude::*;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mempersp_streaming_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn hpcg_config() -> HpcgConfig {
    HpcgConfig { nx: 8, max_iters: 2, mg_levels: 3, group_allocations: true, use_mg: true }
}

fn machine_config() -> MachineConfig {
    let mut cfg = MachineConfig::small();
    cfg.cores = 2;
    cfg
}

/// The materialized reference: simulate, keep the whole trace.
fn reference_trace() -> Trace {
    let mut machine = Machine::new(machine_config());
    machine.run(&mut HpcgWorkload::new(hpcg_config())).trace
}

#[test]
fn streaming_store_is_byte_identical_at_any_thread_count() {
    let reference = reference_trace();
    let ref_path = tmp("reference.mps");
    write_store_with(&ref_path, &reference, DEFAULT_CHUNK_BYTES, 1).unwrap();
    let ref_bytes = std::fs::read(&ref_path).unwrap();

    for threads in [1usize, 2, 4] {
        let path = tmp(&format!("stream_t{threads}.mps"));
        let opts = StreamOptions { writer_threads: threads, ..StreamOptions::default() };
        let report = run_streaming_to_path(
            machine_config(),
            &mut HpcgWorkload::new(hpcg_config()),
            &path,
            &opts,
        )
        .unwrap();
        assert_eq!(report.events_streamed, reference.events.len() as u64);
        assert!(report.trace.events.is_empty(), "streamed events must not be retained");
        assert_eq!(report.trace.region_names, reference.region_names);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(
            bytes, ref_bytes,
            "streamed store differs from materialize+convert at {threads} writer threads"
        );
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_file(&ref_path).ok();
}

#[test]
fn streaming_sharded_store_matches_materialized_sharding() {
    let reference = reference_trace();
    let ref_dir = tmp("reference.mps.d");
    std::fs::remove_dir_all(&ref_dir).ok();
    write_store_sharded(&ref_dir, &reference, DEFAULT_CHUNK_BYTES, 1, 2_000).unwrap();

    let dir = tmp("stream.mps.d");
    std::fs::remove_dir_all(&dir).ok();
    let opts = StreamOptions {
        writer_threads: 2,
        max_inflight: Some(2),
        shard_events: Some(2_000),
        ..StreamOptions::default()
    };
    run_streaming_to_path(machine_config(), &mut HpcgWorkload::new(hpcg_config()), &dir, &opts)
        .unwrap();

    let mut names: Vec<String> = std::fs::read_dir(&ref_dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert!(names.len() > 2, "expected several shards, got {names:?}");
    for name in names {
        let a = std::fs::read(ref_dir.join(&name)).unwrap();
        let b = std::fs::read(dir.join(&name)).unwrap();
        assert_eq!(a, b, "shard {name} differs between streamed and materialized writes");
    }
    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn streaming_prv_matches_save_trace() {
    let reference = reference_trace();
    let ref_path = tmp("reference.prv");
    save_trace(&ref_path, &reference).unwrap();

    let path = tmp("stream.prv");
    run_streaming_to_path(
        machine_config(),
        &mut HpcgWorkload::new(hpcg_config()),
        &path,
        &StreamOptions::default(),
    )
    .unwrap();
    assert_eq!(
        std::fs::read(&path).unwrap(),
        std::fs::read(&ref_path).unwrap(),
        "streamed .prv differs from save_trace"
    );
    std::fs::remove_file(&ref_path).ok();
    std::fs::remove_file(&path).ok();
}

/// A deterministic two-core kernel with interleaved loads, stores,
/// compute and barriers — enough event variety that a wrong drain
/// order would scramble the output.
struct TwoCore {
    n: u64,
}

impl Workload for TwoCore {
    fn name(&self) -> String {
        "twocore".into()
    }

    fn run(&mut self, ctx: &mut dyn AppContext) {
        let ip = ctx.location("tc.rs", 1, "tc");
        let a = ctx.malloc(0, 1 << 18, &CodeLocation::new("tc.rs", 2, "a"));
        let b = ctx.malloc(1, 1 << 18, &CodeLocation::new("tc.rs", 3, "b"));
        ctx.enter(0, "phase");
        ctx.enter(1, "phase");
        for i in 0..self.n {
            ctx.load(0, ip, a + (i * 24) % (1 << 18), 8);
            ctx.store(1, ip, b + (i * 40) % (1 << 18), 8);
            ctx.compute(0, ip, 3, 1);
            ctx.compute(1, ip, 2, 1);
            if i % 700 == 699 {
                ctx.barrier();
            }
        }
        ctx.exit(1, "phase");
        ctx.exit(0, "phase");
    }
}

fn two_core_config(epoch_cap: usize) -> MachineConfig {
    let mut cfg = MachineConfig::small();
    cfg.cores = 2;
    cfg.epoch_cap = epoch_cap;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Epoch boundaries decide *when* events are drained to the sink,
    /// never *what* is written: for any cap — including 1, which
    /// flushes after every single operation — the streamed store holds
    /// the same bytes.
    #[test]
    fn epoch_cap_never_changes_streamed_bytes(cap in 1usize..2048) {
        let reference = {
            let mut machine = Machine::new(two_core_config(mempersp::core::DEFAULT_EPOCH_CAP));
            machine.run(&mut TwoCore { n: 3000 }).trace
        };
        let ref_path = tmp("prop_ref.mps");
        write_store_with(&ref_path, &reference, DEFAULT_CHUNK_BYTES, 1).unwrap();
        let ref_bytes = std::fs::read(&ref_path).unwrap();

        let path = tmp(&format!("prop_cap{cap}.mps"));
        let report = run_streaming_to_path(
            two_core_config(cap),
            &mut TwoCore { n: 3000 },
            &path,
            &StreamOptions::default(),
        ).unwrap();
        prop_assert_eq!(report.events_streamed, reference.events.len() as u64);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&ref_path).ok();
        prop_assert_eq!(bytes, ref_bytes, "cap {} changed the streamed bytes", cap);
        // The header side of the streaming report matches the
        // materialized run too (same text sections, no events).
        prop_assert_eq!(
            write_trace(&Trace { events: Vec::new(), ..reference.clone() }),
            write_trace(&Trace { events: Vec::new(), ..report.trace.clone() })
        );
    }
}
