//! End-to-end checks of the binary trace store against an HPCG run:
//! a `Query`-filtered read of the `.mps` container must equal the
//! same filter applied linearly to the parsed `.prv` text trace,
//! while decoding strictly fewer chunks than a full scan — and a
//! cached re-query must not touch the codec at all.

use mempersp::core::{Machine, MachineConfig};
use mempersp::extrae::query::{EventClass, Query};
use mempersp::extrae::trace_format::{load_trace, save_trace, write_trace};
use mempersp::extrae::Trace;
use mempersp::hpcg::{HpcgConfig, HpcgWorkload};
use mempersp::store::{open_trace_source, write_store_chunked, StoreReader};

fn tmpdir() -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("mempersp_store_it_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// One shared HPCG run; the trace is written once as `.prv` and once
/// as a small-chunked `.mps` so the selective queries below have many
/// chunks to prune.
fn fixture() -> &'static (Trace, std::path::PathBuf, std::path::PathBuf) {
    use std::sync::OnceLock;
    static CELL: OnceLock<(Trace, std::path::PathBuf, std::path::PathBuf)> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut mcfg = MachineConfig::small();
        mcfg.cores = 2;
        mcfg.counter_sample_period = 20_000;
        let mut w = HpcgWorkload::new(HpcgConfig {
            nx: 8,
            max_iters: 3,
            mg_levels: 3,
            group_allocations: true,
            use_mg: true,
        });
        let report = Machine::new(mcfg).run(&mut w);
        let dir = tmpdir();
        let prv = dir.join("hpcg.prv");
        let mps = dir.join("hpcg.mps");
        save_trace(&prv, &report.trace).unwrap();
        write_store_chunked(&mps, &report.trace, 8 * 1024).unwrap();
        (report.trace, prv, mps)
    })
}

/// The acceptance criterion: a filtered query answered from the store
/// equals the equivalent filter over the fully parsed `.prv`, and the
/// footer index makes the store decode strictly fewer chunks than a
/// full scan would.
#[test]
fn filtered_store_query_equals_prv_filter_with_fewer_decodes() {
    let (_, prv, mps) = fixture();
    let parsed = load_trace(prv).unwrap();
    let reader = StoreReader::open(mps).unwrap();
    let total_chunks = reader.chunks().len() as u64;
    assert!(total_chunks >= 4, "need several chunks to prune, got {total_chunks}");

    let span = parsed.events.last().unwrap().cycles;
    let queries = [
        Query::all().with_kinds(&[EventClass::Alloc, EventClass::Free]),
        Query::all().in_time(0, span / 8),
        Query::all().in_time(span / 2, span).with_kinds(&[EventClass::Pebs]).on_cores(&[1]),
    ];
    for q in &queries {
        let (got, stats) = reader.query(q).unwrap();
        let want: Vec<_> = parsed.events.iter().filter(|e| q.matches(e)).cloned().collect();
        assert_eq!(got, want, "store answer differs from .prv filter for {q:?}");
        assert!(
            stats.chunks_decoded + stats.chunks_cached < total_chunks,
            "{q:?} decoded {} + cached {} of {total_chunks} chunks — index pruned nothing",
            stats.chunks_decoded,
            stats.chunks_cached
        );
        assert!(stats.chunks_skipped > 0, "{q:?}: {stats:?}");
    }

    // The decode counter only ever counts real codec work.
    assert!(reader.chunks_decoded_total() < total_chunks * queries.len() as u64);
}

/// Re-running a query must serve every chunk from the block cache.
#[test]
fn repeated_query_is_served_from_the_cache() {
    let (_, _, mps) = fixture();
    let reader = StoreReader::open(mps).unwrap();
    let q = Query::all().with_kinds(&[EventClass::RegionEnter, EventClass::RegionExit]);
    let (first, cold) = reader.query(&q).unwrap();
    let (second, warm) = reader.query(&q).unwrap();
    assert_eq!(first, second);
    assert!(cold.chunks_decoded > 0);
    assert_eq!(warm.chunks_decoded, 0, "warm scan hit the codec: {warm:?}");
    assert_eq!(warm.chunks_cached, cold.chunks_decoded + cold.chunks_cached);
    let cs = reader.cache_stats();
    assert!(cs.hits >= warm.chunks_cached, "{cs:?}");
}

/// The full pipeline guarantee: `prv -> mps -> prv` is byte-identical
/// on a real HPCG trace, through the `TraceSource` plumbing the CLI
/// uses.
#[test]
fn hpcg_prv_mps_prv_is_byte_identical() {
    let (trace, prv, mps) = fixture();
    let mut src = open_trace_source(mps).unwrap();
    assert_eq!(src.format_name(), "mps");
    let back = src.materialize().unwrap();
    assert_eq!(write_trace(&back), write_trace(trace));
    assert_eq!(write_trace(&back), std::fs::read_to_string(prv).unwrap());
}

/// Parallel store scans return exactly the sequential answer on a
/// real trace, for any thread count.
#[test]
fn parallel_store_scan_is_deterministic() {
    let (_, _, mps) = fixture();
    let reader = StoreReader::open(mps).unwrap();
    let q = Query::all().with_kinds(&[EventClass::Pebs]);
    let (seq, _) = reader.query(&q).unwrap();
    assert!(!seq.is_empty());
    for threads in [2, 3, 5, 16] {
        let (par, _) = reader.query_parallel(&q, threads).unwrap();
        assert_eq!(par, seq, "threads={threads}");
    }
}
