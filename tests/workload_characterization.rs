//! The simulated machine must tell the archetypal workloads apart by
//! their PEBS signatures — the foundation for every insight the
//! paper's tooling provides.

use mempersp::core::analysis::reuse::sampled_reuse_histogram;
use mempersp::core::{latency_profile, Machine, MachineConfig};
use mempersp::extrae::Workload;
use mempersp::memsim::MemLevel;
use mempersp::workloads::{PointerChase, StreamTriad, TiledMatmul};

fn run(w: &mut dyn Workload) -> mempersp::core::RunReport {
    let mut machine = Machine::new(MachineConfig::small());
    machine.run(w)
}

fn dram_fraction(report: &mempersp::core::RunReport) -> f64 {
    let samples: Vec<_> = report.trace.pebs_events().collect();
    let dram = samples
        .iter()
        .filter(|(_, s, _)| s.source == MemLevel::Dram)
        .count();
    dram as f64 / samples.len().max(1) as f64
}

#[test]
fn pointer_chase_is_latency_bound() {
    let chase = run(&mut PointerChase::new(1 << 13, 1 << 14, 42));
    let triad = run(&mut StreamTriad::new(1 << 13, 8));
    assert!(
        dram_fraction(&chase) > 0.5,
        "random walk over a >L3 footprint misses everywhere: {}",
        dram_fraction(&chase)
    );
    let chase_lat = latency_profile(&chase.trace, None, false).unwrap();
    let triad_lat = latency_profile(&triad.trace, None, false).unwrap();
    assert!(
        chase_lat.mean > 2.0 * triad_lat.mean,
        "chase mean {} vs triad mean {}",
        chase_lat.mean,
        triad_lat.mean
    );
}

#[test]
fn tiled_matmul_hits_cache() {
    // 32×32 tiles of 8 B doubles: the working tile fits the small L2.
    let report = run(&mut TiledMatmul::new(32, 4));
    assert!(
        dram_fraction(&report) < 0.2,
        "blocked matmul mostly hits cache: {}",
        dram_fraction(&report)
    );
}

#[test]
fn stream_has_no_sampled_reuse_but_matmul_does() {
    let triad = run(&mut StreamTriad::new(1 << 14, 1));
    let h_stream = sampled_reuse_histogram(&triad.trace, 0, 64);
    // Streaming: a line is touched once (8 consecutive doubles rarely
    // produce two samples on one line at period ~100).
    let stream_reuse = h_stream.reuses as f64 / (h_stream.reuses + h_stream.cold).max(1) as f64;

    let matmul = run(&mut TiledMatmul::new(40, 8));
    let h_mm = sampled_reuse_histogram(&matmul.trace, 0, 64);
    let mm_reuse = h_mm.reuses as f64 / (h_mm.reuses + h_mm.cold).max(1) as f64;

    assert!(
        mm_reuse > stream_reuse,
        "matmul reuse {mm_reuse:.2} must exceed stream reuse {stream_reuse:.2}"
    );
    assert!(h_mm.reuses > 10, "matmul shows substantial sampled reuse");
}

#[test]
fn latencies_correlate_with_data_source() {
    let report = run(&mut PointerChase::new(1 << 13, 1 << 14, 7));
    let p = latency_profile(&report.trace, None, false).unwrap();
    // Per-source mean latencies are ordered L1 < L2 < L3 < DRAM where
    // present.
    let means: Vec<f64> = p.mean_by_source.iter().flatten().copied().collect();
    assert!(means.len() >= 2, "at least two sources sampled");
    for w in means.windows(2) {
        assert!(w[0] < w[1], "per-source means must increase: {means:?}");
    }
}
