//! Machine-level event plumbing: multiplexer rotations appear in the
//! trace, counter snapshots at region boundaries are coherent with
//! the PEBS sample stream, and the NullContext and Machine agree on
//! workload numerics.

use mempersp::core::{Machine, MachineConfig};
use mempersp::extrae::events::EventPayload;
use mempersp::extrae::NullContext;
use mempersp::pebs::EventKind;
use mempersp::workloads::{StreamTriad, TiledMatmul, Workload};

#[test]
fn mux_switch_events_recorded() {
    let mut cfg = MachineConfig::small();
    cfg.mux_slice_cycles = 2_000; // fast rotation
    let mut m = Machine::new(cfg);
    let report = m.run(&mut StreamTriad::new(1 << 13, 4));
    let switches = report
        .trace
        .events
        .iter()
        .filter(|e| matches!(e.payload, EventPayload::MuxSwitch { .. }))
        .count();
    assert!(switches > 2, "rotations recorded: {switches}");
    // Labels alternate between the two configured events.
    let labels: Vec<&str> = report
        .trace
        .events
        .iter()
        .filter_map(|e| match &e.payload {
            EventPayload::MuxSwitch { label, .. } => Some(label.as_str()),
            _ => None,
        })
        .collect();
    assert!(labels.contains(&"stores"));
    assert!(labels.iter().any(|l| l.starts_with("loads")));
}

#[test]
fn region_counters_bound_the_pebs_stream() {
    let mut m = Machine::new(MachineConfig::small());
    let report = m.run(&mut StreamTriad::new(1 << 13, 2));
    // Loads counted at the last region exit ≥ loads sampled by PEBS ×
    // period (roughly), and ≥ raw count of load samples.
    let exit_counters = report
        .trace
        .events
        .iter()
        .rev()
        .find_map(|e| match &e.payload {
            EventPayload::RegionExit { counters, .. } => Some(*counters),
            _ => None,
        })
        .expect("region exits exist");
    let load_samples = report
        .trace
        .pebs_events()
        .filter(|(_, s, _)| !s.is_store)
        .count() as u64;
    assert!(exit_counters.get(EventKind::Loads) > load_samples);
    // Cycles are monotone through the event stream.
    let mut last = 0u64;
    for e in &report.trace.events {
        assert!(e.cycles >= last);
        last = e.cycles;
    }
}

#[test]
fn machine_and_nullcontext_agree_on_numerics() {
    let mut w1 = TiledMatmul::new(16, 4);
    let mut ctx = NullContext::new(1);
    w1.run(&mut ctx);

    let mut w2 = TiledMatmul::new(16, 4);
    let mut m = Machine::new(MachineConfig::small());
    let _ = m.run(&mut w2);

    assert_eq!(w1.checksum, w2.checksum, "timing model cannot change the math");
}

#[test]
fn static_objects_resolve_pebs_samples() {
    struct W;
    impl Workload for W {
        fn name(&self) -> String {
            "statics".into()
        }
        fn run(&mut self, ctx: &mut dyn mempersp::extrae::AppContext) {
            let ip = ctx.location("s.c", 1, "s");
            let ghost = ctx.register_static("ghost_cells", 8192);
            let top = ctx.register_static("top_halo", 4096);
            assert_ne!(ghost, top);
            ctx.enter(0, "r");
            for i in 0..20_000u64 {
                ctx.load(0, ip, ghost + (i % 1024) * 8, 8);
                ctx.store(0, ip, top + (i % 512) * 8, 8);
            }
            ctx.exit(0, "r");
        }
    }
    let mut m = Machine::new(MachineConfig::small());
    let rep = m.run(&mut W);
    // Every sample resolves to one of the two statics.
    assert!(rep.trace.resolution.resolved > 0);
    assert_eq!(rep.trace.resolution.unresolved, 0);
    let names: Vec<String> = rep
        .trace
        .pebs_events()
        .filter_map(|(_, _, o)| o)
        .filter_map(|id| rep.trace.objects.get(id).map(|d| d.name.clone()))
        .collect();
    assert!(names.iter().any(|n| n == "ghost_cells"));
    assert!(names.iter().any(|n| n == "top_halo"));
}

#[test]
fn machine_reuse_after_run_is_clean_tracer() {
    // Working set (3 × 2 KiB) fits the small machine's 16 KiB L3.
    let mut m = Machine::new(MachineConfig::small());
    let r1 = m.run(&mut StreamTriad::new(1 << 8, 2));
    let r2 = m.run(&mut StreamTriad::new(1 << 8, 2));
    // The second trace starts fresh: allocations repeat at identical
    // simulated addresses (the allocator lives in the tracer).
    let first_alloc = |t: &mempersp::extrae::Trace| {
        t.events.iter().find_map(|e| match e.payload {
            EventPayload::Alloc { base, .. } => Some(base),
            _ => None,
        })
    };
    assert_eq!(first_alloc(&r1.trace), first_alloc(&r2.trace));
    // But hardware state persisted: the second run is warmer.
    let d1 = r1.stats.total_cores().served_dram;
    let d2 = r2.stats.total_cores().served_dram - d1;
    assert!(d2 < d1, "second run hits warm caches: {d2} vs {d1}");
}
