//! The coherence model + PEBS expose false sharing: the shared-line
//! variant ping-pongs between cores and its sampled access costs blow
//! up; padding to cache-line size fixes it.

use mempersp::core::{latency_profile, Machine, MachineConfig, PebsCoreSelect};
use mempersp::workloads::FalseSharing;

fn run(padded: bool) -> (mempersp::core::RunReport, u64) {
    let mut cfg = MachineConfig::small();
    cfg.cores = 2;
    cfg.pebs_cores = PebsCoreSelect::All;
    // Dense sampling so the short kernel yields samples.
    for e in &mut cfg.pebs_events {
        e.period = 13;
    }
    let mut m = Machine::new(cfg);
    let mut w = FalseSharing::new(20_000, padded);
    let report = m.run(&mut w);
    assert_eq!(w.total, 40_000);
    let inv = report.stats.coherence_invalidations;
    (report, inv)
}

#[test]
fn shared_line_pingpongs_padded_does_not() {
    let (_, inv_shared) = run(false);
    let (_, inv_padded) = run(true);
    assert!(
        inv_shared > 10_000,
        "unpadded counters invalidate constantly: {inv_shared}"
    );
    assert!(
        inv_padded < inv_shared / 100,
        "padding eliminates the ping-pong: {inv_padded} vs {inv_shared}"
    );
}

#[test]
fn sampled_latency_reveals_the_problem() {
    let (shared, _) = run(false);
    let (padded, _) = run(true);
    let lat_shared = latency_profile(&shared.trace, None, false).expect("samples");
    let lat_padded = latency_profile(&padded.trace, None, false).expect("samples");
    assert!(
        lat_shared.mean > 1.5 * lat_padded.mean,
        "shared-line loads cost more: {:.1} vs {:.1} cycles",
        lat_shared.mean,
        lat_padded.mean
    );
    // Wall-clock agrees with the diagnosis.
    assert!(shared.wall_cycles > padded.wall_cycles);
}
