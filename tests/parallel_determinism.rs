//! Determinism-equivalence suite for the epoch-pipelined machine:
//! running the same workload with 1, 2, or 4 worker threads must
//! produce byte-identical traces, identical memsim statistics,
//! identical PEBS sample sets, and identical folded panels.
//!
//! The `threads` knob only parallelizes the private phase of
//! conflict-free epochs (DESIGN.md §7); everything observable is
//! replayed in the original global issue order, so any divergence here
//! is a bug, not noise.

use mempersp::core::workflow::analyze_hpcg;
use mempersp::core::{Machine, MachineConfig};
use mempersp::extrae::trace_format::write_trace;
use mempersp::extrae::Workload;
use mempersp::folding::{fold_region, FoldingConfig};
use mempersp::hpcg::HpcgConfig;
use mempersp::workloads::{Stencil7, StreamTriad};

/// Run a workload on a `cores`-core small machine with the given
/// worker-thread count; return the serialized trace plus the stats.
fn run_workload(
    make: &dyn Fn() -> Box<dyn Workload>,
    cores: usize,
    threads: usize,
) -> (String, mempersp::memsim::SystemStats, u64) {
    let mut cfg = MachineConfig::small();
    cfg.cores = cores;
    cfg.threads = threads;
    let mut machine = Machine::new(cfg);
    let mut w = make();
    let report = machine.run(w.as_mut());
    (write_trace(&report.trace), report.stats, report.wall_cycles)
}

fn assert_workload_thread_invariant(make: &dyn Fn() -> Box<dyn Workload>, cores: usize) {
    let base = run_workload(make, cores, 1);
    for threads in [2, 4] {
        let par = run_workload(make, cores, threads);
        assert_eq!(base.1, par.1, "memsim stats differ at {threads} threads");
        assert_eq!(base.2, par.2, "wall cycles differ at {threads} threads");
        assert_eq!(
            base.0, par.0,
            "serialized trace differs at {threads} threads"
        );
    }
}

#[test]
fn stream_triad_is_thread_invariant() {
    assert_workload_thread_invariant(&|| Box::new(StreamTriad::new(50_000, 2)), 1);
}

#[test]
fn jacobi_stencil_is_thread_invariant() {
    assert_workload_thread_invariant(&|| Box::new(Stencil7::new(24, 2)), 1);
}

/// The acceptance-criteria run: HPCG `nx=24` on 4 simulated cores,
/// sequential versus 4 worker threads — byte-identical traces,
/// identical PEBS sample sets, and identical folded reports.
#[test]
fn hpcg_nx24_parallel_matches_sequential() {
    let analyze = |threads: usize| {
        let mut mcfg = MachineConfig::small();
        mcfg.cores = 4;
        mcfg.threads = threads;
        let hcfg = HpcgConfig {
            nx: 24,
            max_iters: 2,
            mg_levels: 4,
            group_allocations: true,
            use_mg: true,
        };
        analyze_hpcg(mcfg, hcfg)
    };
    let seq = analyze(1);
    let par = analyze(4);

    // Hardware statistics and the run clock.
    assert_eq!(seq.report.stats, par.report.stats, "memsim stats differ");
    assert_eq!(seq.report.wall_cycles, par.report.wall_cycles);

    // PEBS sample sets (order included).
    let seq_pebs: Vec<_> = seq.report.trace.pebs_events().collect();
    let par_pebs: Vec<_> = par.report.trace.pebs_events().collect();
    assert!(!seq_pebs.is_empty(), "run captured PEBS samples");
    assert_eq!(seq_pebs, par_pebs, "PEBS sample sets differ");

    // Byte-identical serialized traces.
    assert_eq!(
        write_trace(&seq.report.trace),
        write_trace(&par.report.trace),
        "serialized traces differ"
    );

    // Identical folded panels (the figures the toolchain produces).
    for (name, s, p) in [
        ("iteration", &seq.folded_iteration, &par.folded_iteration),
        ("symgs", &seq.folded_symgs, &par.folded_symgs),
    ] {
        assert_eq!(
            mempersp::core::report::ascii::address_panel(s, 96, 20),
            mempersp::core::report::ascii::address_panel(p, 96, 20),
            "{name} address panel differs"
        );
        assert_eq!(
            mempersp::core::report::ascii::performance_panel(s, 80),
            mempersp::core::report::ascii::performance_panel(p, 80),
            "{name} performance panel differs"
        );
    }

    // And the derived analysis agrees.
    assert_eq!(seq.phases.len(), par.phases.len());
    assert_eq!(seq.resolved_fraction, par.resolved_fraction);
}

/// Issuing through `access_batch` must be indistinguishable from the
/// equivalent singles on a full machine (trace included).
#[test]
fn batched_stream_equals_single_issue() {
    use mempersp::extrae::{AppContext, CodeLocation, MemRequest};

    struct W {
        batched: bool,
    }
    impl Workload for W {
        fn name(&self) -> String {
            "batch-eq".into()
        }
        fn run(&mut self, ctx: &mut dyn AppContext) {
            let ip = ctx.location("b.rs", 1, "b");
            let base = ctx.malloc(0, 1 << 20, &CodeLocation::new("b.rs", 2, "b"));
            ctx.enter(0, "r");
            let ops: Vec<MemRequest> = (0..60_000u64)
                .map(|i| {
                    let a = base + (i * 72) % (1 << 20);
                    if i % 7 == 0 {
                        MemRequest::store(ip, a, 8)
                    } else {
                        MemRequest::load(ip, a, 8)
                    }
                })
                .collect();
            if self.batched {
                for chunk in ops.chunks(512) {
                    ctx.access_batch(0, chunk);
                }
            } else {
                for op in &ops {
                    if op.store {
                        ctx.store(0, op.ip, op.addr, op.size);
                    } else {
                        ctx.load(0, op.ip, op.addr, op.size);
                    }
                }
            }
            ctx.exit(0, "r");
        }
    }

    let run = |batched: bool| {
        let mut m = Machine::new(MachineConfig::small());
        let rep = m.run(&mut W { batched });
        (write_trace(&rep.trace), rep.stats, rep.wall_cycles)
    };
    assert_eq!(run(false), run(true));
}

/// Folding the same trace twice is pure; folding traces from two
/// thread counts must agree even through the folding pipeline's
/// configuration knobs.
#[test]
fn folded_report_thread_invariant_for_stream() {
    let run = |threads: usize| {
        let mut cfg = MachineConfig::small();
        cfg.threads = threads;
        let mut machine = Machine::new(cfg);
        let mut w = StreamTriad::new(40_000, 3);
        machine.run(&mut w).trace
    };
    let a = run(1);
    let b = run(4);
    let fa = fold_region(&a, "triad", &FoldingConfig::default()).expect("triad folds");
    let fb = fold_region(&b, "triad", &FoldingConfig::default()).expect("triad folds");
    assert_eq!(fa.instances_used, fb.instances_used);
    assert_eq!(
        mempersp::core::report::ascii::address_panel(&fa, 96, 20),
        mempersp::core::report::ascii::address_panel(&fb, 96, 20)
    );
    assert_eq!(
        mempersp::core::report::ascii::performance_panel(&fa, 80),
        mempersp::core::report::ascii::performance_panel(&fb, 80)
    );
}
